package minicc

import "fmt"

// Check type-checks a program in place: it resolves names, annotates every
// expression with its type, collects each function's locals, and marks
// address-taken variables (which the code generator must keep in memory).
func Check(prog *Program) error {
	c := &checker{prog: prog}
	c.externs = make(map[string]*ExternDecl)
	for _, e := range prog.Externs {
		if _, dup := c.externs[e.Name]; dup {
			return fmt.Errorf("minicc: duplicate extern %q", e.Name)
		}
		c.externs[e.Name] = e
	}
	c.globals = make(map[string]*GlobalDecl)
	for _, g := range prog.Globals {
		if _, dup := c.globals[g.Name]; dup {
			return fmt.Errorf("minicc: duplicate global %q", g.Name)
		}
		c.globals[g.Name] = g
	}
	c.funcs = make(map[string]*FuncDecl)
	for _, f := range prog.Funcs {
		if _, dup := c.funcs[f.Name]; dup {
			return fmt.Errorf("minicc: duplicate function %q", f.Name)
		}
		c.funcs[f.Name] = f
	}
	for _, f := range prog.Funcs {
		if err := c.checkFunc(f); err != nil {
			return err
		}
	}
	return nil
}

type checker struct {
	prog    *Program
	externs map[string]*ExternDecl
	globals map[string]*GlobalDecl
	funcs   map[string]*FuncDecl

	fn     *FuncDecl
	scopes []map[string]*VarDecl
	seq    int
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]*VarDecl{}) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(v *VarDecl) error {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[v.Name]; dup {
		return fmt.Errorf("minicc: %s: redeclared %q", c.fn.Name, v.Name)
	}
	top[v.Name] = v
	return nil
}

func (c *checker) lookup(name string) *VarDecl {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if v, ok := c.scopes[i][name]; ok {
			return v
		}
	}
	return nil
}

func (c *checker) checkFunc(f *FuncDecl) error {
	c.fn = f
	c.seq = 0
	c.scopes = nil
	c.pushScope()
	for _, prm := range f.Params {
		if !prm.Type.IsScalar() {
			return fmt.Errorf("minicc: %s: parameter %q must be scalar", f.Name, prm.Name)
		}
		prm.Seq = c.seq
		c.seq++
		if err := c.declare(prm); err != nil {
			return err
		}
	}
	if f.Ret.Kind != TVoid && !f.Ret.IsScalar() {
		return fmt.Errorf("minicc: %s: return type must be scalar or void", f.Name)
	}
	if err := c.checkBlock(f.Body); err != nil {
		return err
	}
	c.popScope()
	return nil
}

func (c *checker) checkBlock(b *Block) error {
	c.pushScope()
	defer c.popScope()
	for _, s := range b.Stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	switch s := s.(type) {
	case *Block:
		return c.checkBlock(s)
	case *DeclStmt:
		v := s.Var
		if v.Type.Size() == 0 {
			return fmt.Errorf("minicc: %s: variable %q has zero size", c.fn.Name, v.Name)
		}
		v.Seq = c.seq
		c.seq++
		if !v.Type.IsScalar() {
			// Arrays and structs are memory objects.
			v.AddrTaken = true
		}
		if err := c.declare(v); err != nil {
			return err
		}
		c.fn.Locals = append(c.fn.Locals, v)
		if s.Init != nil {
			if !v.Type.IsScalar() {
				return fmt.Errorf("minicc: %s: cannot initialize aggregate %q", c.fn.Name, v.Name)
			}
			if err := c.checkExpr(s.Init); err != nil {
				return err
			}
			if err := c.assignable(v.Type, s.Init); err != nil {
				return fmt.Errorf("minicc: %s: init of %q: %w", c.fn.Name, v.Name, err)
			}
		}
		return nil
	case *ExprStmt:
		return c.checkExpr(s.X)
	case *If:
		if err := c.checkExpr(s.Cond); err != nil {
			return err
		}
		if err := c.scalarCond(s.Cond); err != nil {
			return err
		}
		if err := c.checkStmt(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			return c.checkStmt(s.Else)
		}
		return nil
	case *While:
		if err := c.checkExpr(s.Cond); err != nil {
			return err
		}
		if err := c.scalarCond(s.Cond); err != nil {
			return err
		}
		return c.checkStmt(s.Body)
	case *For:
		c.pushScope()
		defer c.popScope()
		if s.Init != nil {
			if err := c.checkStmt(s.Init); err != nil {
				return err
			}
		}
		if s.Cond != nil {
			if err := c.checkExpr(s.Cond); err != nil {
				return err
			}
			if err := c.scalarCond(s.Cond); err != nil {
				return err
			}
		}
		if s.Post != nil {
			if err := c.checkExpr(s.Post); err != nil {
				return err
			}
		}
		return c.checkStmt(s.Body)
	case *Switch:
		if err := c.checkExpr(s.X); err != nil {
			return err
		}
		if !s.X.Type().Decay().IsInteger() {
			return fmt.Errorf("minicc: %s: switch on non-integer", c.fn.Name)
		}
		seen := map[int32]bool{}
		for _, cs := range s.Cases {
			if seen[cs.Val] {
				return fmt.Errorf("minicc: %s: duplicate case %d", c.fn.Name, cs.Val)
			}
			seen[cs.Val] = true
			for _, st := range cs.Body {
				if err := c.checkStmt(st); err != nil {
					return err
				}
			}
		}
		for _, st := range s.Default {
			if err := c.checkStmt(st); err != nil {
				return err
			}
		}
		return nil
	case *Return:
		if s.X == nil {
			if c.fn.Ret.Kind != TVoid {
				return fmt.Errorf("minicc: %s: missing return value", c.fn.Name)
			}
			return nil
		}
		if c.fn.Ret.Kind == TVoid {
			return fmt.Errorf("minicc: %s: return value in void function", c.fn.Name)
		}
		if err := c.checkExpr(s.X); err != nil {
			return err
		}
		return c.assignable(c.fn.Ret, s.X)
	case *Break, *Continue:
		return nil
	case *multiStmt:
		for _, st := range s.list {
			if err := c.checkStmt(st); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("minicc: unknown statement %T", s)
}

func (c *checker) scalarCond(e Expr) error {
	if !e.Type().Decay().IsScalar() {
		return fmt.Errorf("minicc: %s: condition is not scalar", c.fn.Name)
	}
	return nil
}

// assignable checks that an expression of type from can be assigned to a
// destination of type to. Integers interconvert; pointers must match, except
// that integer 0 converts to any pointer, void* interconverts with any
// pointer, and fnptr accepts any function address.
func (c *checker) assignable(to *Type, e Expr) error {
	from := e.Type().Decay()
	switch {
	case to.IsInteger() && from.IsInteger():
		return nil
	case to.Kind == TPtr && from.Kind == TPtr:
		if to.Elem.Equal(from.Elem) ||
			to.Elem.Kind == TVoid || from.Elem.Kind == TVoid ||
			to.Elem.Kind == TChar || from.Elem.Kind == TChar {
			return nil
		}
		return fmt.Errorf("incompatible pointer assignment: %s = %s", to, from)
	case to.Kind == TPtr && from.IsInteger():
		if n, ok := e.(*NumLit); ok && n.Val == 0 {
			return nil
		}
		return fmt.Errorf("cannot assign integer to %s", to)
	case to.IsInteger() && from.Kind == TPtr:
		return fmt.Errorf("cannot assign %s to integer without a cast", from)
	case to.Kind == TFnPtr && from.Kind == TFnPtr:
		return nil
	case to.Kind == TStruct && from.Kind == TStruct && to.Equal(from):
		return nil
	}
	return fmt.Errorf("cannot assign %s to %s", from, to)
}

func (c *checker) checkExpr(e Expr) error {
	switch e := e.(type) {
	case *NumLit:
		e.Typ = IntType
	case *StrLit:
		e.Typ = PtrTo(CharType)
	case *VarRef:
		if v := c.lookup(e.Name); v != nil {
			e.Local = v
			e.Typ = v.Type
			return nil
		}
		if g, ok := c.globals[e.Name]; ok {
			e.Global = g
			e.Typ = g.Type
			return nil
		}
		if f, ok := c.funcs[e.Name]; ok {
			e.Func = f
			e.Typ = FnPtrType
			return nil
		}
		if x, ok := c.externs[e.Name]; ok {
			e.Ext = x
			e.Typ = FnPtrType
			return nil
		}
		return fmt.Errorf("minicc: %s: undefined identifier %q", c.fn.Name, e.Name)
	case *Unary:
		if err := c.checkExpr(e.X); err != nil {
			return err
		}
		xt := e.X.Type()
		switch e.Op {
		case "-", "~":
			if !xt.Decay().IsInteger() {
				return fmt.Errorf("minicc: %s: unary %s of %s", c.fn.Name, e.Op, xt)
			}
			e.Typ = IntType
		case "!":
			if !xt.Decay().IsScalar() {
				return fmt.Errorf("minicc: %s: ! of %s", c.fn.Name, xt)
			}
			e.Typ = IntType
		case "*":
			d := xt.Decay()
			if d.Kind != TPtr {
				return fmt.Errorf("minicc: %s: dereference of %s", c.fn.Name, xt)
			}
			if d.Elem.Kind == TVoid {
				return fmt.Errorf("minicc: %s: dereference of void*", c.fn.Name)
			}
			e.Typ = d.Elem
		case "&":
			if err := c.markAddrTaken(e.X); err != nil {
				return err
			}
			if vr, ok := e.X.(*VarRef); ok && (vr.Func != nil || vr.Ext != nil) {
				if vr.Ext != nil {
					return fmt.Errorf("minicc: %s: cannot take address of extern %q", c.fn.Name, vr.Name)
				}
				vr.Func.AddressTaken = true
				e.Typ = FnPtrType
				return nil
			}
			e.Typ = PtrTo(xt)
		case "++", "--":
			if err := c.lvalue(e.X); err != nil {
				return err
			}
			d := xt.Decay()
			if !d.IsInteger() && d.Kind != TPtr {
				return fmt.Errorf("minicc: %s: %s of %s", c.fn.Name, e.Op, xt)
			}
			e.Typ = d
		default:
			return fmt.Errorf("minicc: unknown unary %q", e.Op)
		}
	case *Postfix:
		if err := c.checkExpr(e.X); err != nil {
			return err
		}
		if err := c.lvalue(e.X); err != nil {
			return err
		}
		d := e.X.Type().Decay()
		if !d.IsInteger() && d.Kind != TPtr {
			return fmt.Errorf("minicc: %s: %s of %s", c.fn.Name, e.Op, e.X.Type())
		}
		e.Typ = d
	case *Binary:
		if err := c.checkExpr(e.L); err != nil {
			return err
		}
		if err := c.checkExpr(e.R); err != nil {
			return err
		}
		lt, rt := e.L.Type().Decay(), e.R.Type().Decay()
		switch e.Op {
		case "&&", "||":
			if !lt.IsScalar() || !rt.IsScalar() {
				return fmt.Errorf("minicc: %s: logical op on non-scalars", c.fn.Name)
			}
			e.Typ = IntType
		case "==", "!=", "<", "<=", ">", ">=":
			if lt.Kind == TPtr && rt.Kind == TPtr {
				e.Typ = IntType
				return nil
			}
			if lt.IsInteger() && rt.IsInteger() {
				e.Typ = IntType
				return nil
			}
			// Pointer vs literal 0.
			if lt.Kind == TPtr && rt.IsInteger() || rt.Kind == TPtr && lt.IsInteger() {
				e.Typ = IntType
				return nil
			}
			return fmt.Errorf("minicc: %s: comparison of %s and %s", c.fn.Name, lt, rt)
		case "+":
			switch {
			case lt.Kind == TPtr && rt.IsInteger():
				e.Typ = lt
			case lt.IsInteger() && rt.Kind == TPtr:
				e.Typ = rt
			case lt.IsInteger() && rt.IsInteger():
				e.Typ = IntType
			default:
				return fmt.Errorf("minicc: %s: + of %s and %s", c.fn.Name, lt, rt)
			}
		case "-":
			switch {
			case lt.Kind == TPtr && rt.IsInteger():
				e.Typ = lt
			case lt.Kind == TPtr && rt.Kind == TPtr && lt.Elem.Equal(rt.Elem):
				e.Typ = IntType
			case lt.IsInteger() && rt.IsInteger():
				e.Typ = IntType
			default:
				return fmt.Errorf("minicc: %s: - of %s and %s", c.fn.Name, lt, rt)
			}
		default: // * / % & | ^ << >>
			if !lt.IsInteger() || !rt.IsInteger() {
				return fmt.Errorf("minicc: %s: %s of %s and %s", c.fn.Name, e.Op, lt, rt)
			}
			e.Typ = IntType
		}
	case *Assign:
		if err := c.checkExpr(e.L); err != nil {
			return err
		}
		if err := c.checkExpr(e.R); err != nil {
			return err
		}
		if err := c.lvalue(e.L); err != nil {
			return err
		}
		if err := c.assignable(e.L.Type(), e.R); err != nil {
			return fmt.Errorf("minicc: %s: %w", c.fn.Name, err)
		}
		e.Typ = e.L.Type()
	case *Call:
		for _, a := range e.Args {
			if err := c.checkExpr(a); err != nil {
				return err
			}
			if !a.Type().Decay().IsScalar() {
				return fmt.Errorf("minicc: %s: aggregate argument", c.fn.Name)
			}
		}
		if err := c.checkExpr(e.Fn); err != nil {
			return err
		}
		vr, _ := e.Fn.(*VarRef)
		switch {
		case vr != nil && vr.Func != nil:
			f := vr.Func
			if len(e.Args) != len(f.Params) {
				return fmt.Errorf("minicc: %s: call to %s with %d args, want %d",
					c.fn.Name, f.Name, len(e.Args), len(f.Params))
			}
			for i, a := range e.Args {
				if err := c.assignable(f.Params[i].Type, a); err != nil {
					return fmt.Errorf("minicc: %s: arg %d of %s: %w", c.fn.Name, i, f.Name, err)
				}
			}
			e.Typ = f.Ret
		case vr != nil && vr.Ext != nil:
			x := vr.Ext
			if x.Variadic {
				if len(e.Args) < len(x.Params) {
					return fmt.Errorf("minicc: %s: too few args to %s", c.fn.Name, x.Name)
				}
			} else if len(e.Args) != len(x.Params) {
				return fmt.Errorf("minicc: %s: call to %s with %d args, want %d",
					c.fn.Name, x.Name, len(e.Args), len(x.Params))
			}
			for i := range x.Params {
				if err := c.assignable(x.Params[i], e.Args[i]); err != nil {
					return fmt.Errorf("minicc: %s: arg %d of %s: %w", c.fn.Name, i, x.Name, err)
				}
			}
			e.Typ = x.Ret
		default:
			// Indirect call through an fnptr value.
			if e.Fn.Type().Kind != TFnPtr {
				return fmt.Errorf("minicc: %s: call of non-function", c.fn.Name)
			}
			e.Typ = IntType
		}
	case *Index:
		if err := c.checkExpr(e.Arr); err != nil {
			return err
		}
		if err := c.checkExpr(e.Idx); err != nil {
			return err
		}
		at := e.Arr.Type().Decay()
		if at.Kind != TPtr {
			return fmt.Errorf("minicc: %s: indexing %s", c.fn.Name, e.Arr.Type())
		}
		if !e.Idx.Type().Decay().IsInteger() {
			return fmt.Errorf("minicc: %s: non-integer index", c.fn.Name)
		}
		// Indexing a local array keeps it addressable.
		if err := c.markAddrTaken(e.Arr); err != nil {
			return err
		}
		e.Typ = at.Elem
	case *Member:
		if err := c.checkExpr(e.X); err != nil {
			return err
		}
		xt := e.X.Type()
		if e.Arrow {
			d := xt.Decay()
			if d.Kind != TPtr || d.Elem.Kind != TStruct {
				return fmt.Errorf("minicc: %s: -> on %s", c.fn.Name, xt)
			}
			xt = d.Elem
		} else if xt.Kind != TStruct {
			return fmt.Errorf("minicc: %s: . on %s", c.fn.Name, xt)
		}
		f, ok := xt.Struct.FieldByName(e.Name)
		if !ok {
			return fmt.Errorf("minicc: %s: no field %q in %s", c.fn.Name, e.Name, xt)
		}
		e.Field = f
		e.Typ = f.Type
	case *Cast:
		if err := c.checkExpr(e.X); err != nil {
			return err
		}
		from := e.X.Type().Decay()
		if !from.IsScalar() || !e.To.IsScalar() {
			return fmt.Errorf("minicc: %s: cast %s to %s", c.fn.Name, from, e.To)
		}
		e.Typ = e.To
	case *SizeofType:
		if e.Of == nil {
			if err := c.checkExpr(e.X); err != nil {
				return err
			}
			e.Of = e.X.Type()
		}
		if e.Of.Size() == 0 {
			return fmt.Errorf("minicc: %s: sizeof void", c.fn.Name)
		}
		e.Typ = IntType
	default:
		return fmt.Errorf("minicc: unknown expression %T", e)
	}
	return nil
}

// lvalue checks that e designates a storage location.
func (c *checker) lvalue(e Expr) error {
	switch e := e.(type) {
	case *VarRef:
		if e.Local != nil || e.Global != nil {
			return nil
		}
		return fmt.Errorf("minicc: %s: %q is not assignable", c.fn.Name, e.Name)
	case *Unary:
		if e.Op == "*" {
			return nil
		}
	case *Index:
		return nil
	case *Member:
		if e.Arrow {
			return nil
		}
		return c.lvalue(e.X)
	}
	return fmt.Errorf("minicc: %s: not an lvalue", c.fn.Name)
}

// markAddrTaken flags the base variable of an addressable expression so the
// code generator keeps it in memory.
func (c *checker) markAddrTaken(e Expr) error {
	switch e := e.(type) {
	case *VarRef:
		if e.Local != nil {
			e.Local.AddrTaken = true
		}
		return nil
	case *Index:
		return c.markAddrTaken(e.Arr)
	case *Member:
		if !e.Arrow {
			return c.markAddrTaken(e.X)
		}
		return nil
	case *Unary:
		return nil // *p: the pointee is already in memory
	case *Cast:
		return c.markAddrTaken(e.X)
	}
	return nil
}

// Compile is a convenience that parses and checks in one step.
func Compile(src string) (*Program, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if err := Check(prog); err != nil {
		return nil, err
	}
	return prog, nil
}
