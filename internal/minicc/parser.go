package minicc

import "fmt"

// Parser builds an AST from tokens.
type Parser struct {
	toks    []Token
	pos     int
	structs map[string]*StructType
	prog    *Program
}

// Parse parses a full translation unit.
func Parse(src string) (*Program, error) {
	toks, err := LexAll(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{
		toks:    toks,
		structs: make(map[string]*StructType),
		prog:    &Program{},
	}
	for !p.atEOF() {
		if err := p.parseTopLevel(); err != nil {
			return nil, err
		}
	}
	return p.prog, nil
}

func (p *Parser) atEOF() bool { return p.pos >= len(p.toks) }

func (p *Parser) peek() Token {
	if p.atEOF() {
		return Token{Kind: EOF}
	}
	return p.toks[p.pos]
}

func (p *Parser) peekAt(off int) Token {
	if p.pos+off >= len(p.toks) {
		return Token{Kind: EOF}
	}
	return p.toks[p.pos+off]
}

func (p *Parser) next() Token {
	t := p.peek()
	if !p.atEOF() {
		p.pos++
	}
	return t
}

func (p *Parser) errorf(format string, args ...any) error {
	t := p.peek()
	return &SyntaxError{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) isPunct(lit string) bool {
	t := p.peek()
	return t.Kind == PUNCT && t.Lit == lit
}

func (p *Parser) isKeyword(lit string) bool {
	t := p.peek()
	return t.Kind == KEYWORD && t.Lit == lit
}

func (p *Parser) acceptPunct(lit string) bool {
	if p.isPunct(lit) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) acceptKeyword(lit string) bool {
	if p.isKeyword(lit) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectPunct(lit string) error {
	if !p.acceptPunct(lit) {
		return p.errorf("expected %q, found %s", lit, p.peek())
	}
	return nil
}

func (p *Parser) expectIdent() (string, error) {
	t := p.peek()
	if t.Kind != IDENT {
		return "", p.errorf("expected identifier, found %s", t)
	}
	p.pos++
	return t.Lit, nil
}

// startsType reports whether the current token begins a type.
func (p *Parser) startsType() bool {
	t := p.peek()
	if t.Kind != KEYWORD {
		return false
	}
	switch t.Lit {
	case "int", "char", "void", "struct", "fnptr":
		return true
	}
	return false
}

// parseBaseType parses int/char/void/fnptr/struct NAME plus trailing '*'s
// (used for casts, sizeof and extern parameters, where C attaches the stars
// to the type).
func (p *Parser) parseBaseType() (*Type, error) {
	base, err := p.parseBaseRaw()
	if err != nil {
		return nil, err
	}
	for p.acceptPunct("*") {
		base = PtrTo(base)
	}
	return base, nil
}

// parseBaseRaw parses the base type without trailing '*'s; declarations
// attach stars per declarator (int *p, *q).
func (p *Parser) parseBaseRaw() (*Type, error) {
	t := p.next()
	if t.Kind != KEYWORD {
		return nil, p.errorf("expected type, found %s", t)
	}
	var base *Type
	switch t.Lit {
	case "int":
		base = IntType
	case "char":
		base = CharType
	case "void":
		base = VoidType
	case "fnptr":
		base = FnPtrType
	case "struct":
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		st, ok := p.structs[name]
		if !ok {
			return nil, p.errorf("unknown struct %q", name)
		}
		base = &Type{Kind: TStruct, Struct: st}
	default:
		return nil, p.errorf("expected type, found %s", t)
	}
	return base, nil
}

// parseDeclarator parses '*'* NAME followed by array suffixes, returning
// the final type (arrays wrap outermost-first, C style).
func (p *Parser) parseDeclarator(base *Type) (string, *Type, error) {
	for p.acceptPunct("*") {
		base = PtrTo(base)
	}
	name, err := p.expectIdent()
	if err != nil {
		return "", nil, err
	}
	var dims []int
	for p.acceptPunct("[") {
		t := p.next()
		if t.Kind != NUMBER {
			return "", nil, p.errorf("expected array length, found %s", t)
		}
		if t.Num <= 0 {
			return "", nil, p.errorf("array length must be positive")
		}
		dims = append(dims, int(t.Num))
		if err := p.expectPunct("]"); err != nil {
			return "", nil, err
		}
	}
	ty := base
	for i := len(dims) - 1; i >= 0; i-- {
		ty = ArrayOf(ty, dims[i])
	}
	return name, ty, nil
}

func (p *Parser) parseTopLevel() error {
	switch {
	case p.isKeyword("struct") && p.peekAt(2).Kind == PUNCT && p.peekAt(2).Lit == "{":
		return p.parseStructDef()
	case p.isKeyword("extern"):
		return p.parseExtern()
	}
	base, err := p.parseBaseRaw()
	if err != nil {
		return err
	}
	name, ty, err := p.parseDeclarator(base)
	if err != nil {
		return err
	}
	if p.isPunct("(") {
		return p.parseFunc(name, ty)
	}
	// Global variable(s).
	for {
		g := &GlobalDecl{Name: name, Type: ty}
		if p.acceptPunct("=") {
			t := p.peek()
			switch {
			case t.Kind == NUMBER || (t.Kind == PUNCT && t.Lit == "-" && p.peekAt(1).Kind == NUMBER):
				neg := p.acceptPunct("-")
				n := p.next()
				v := n.Num
				if neg {
					v = -v
				}
				g.InitNum = &v
			case t.Kind == STRING:
				p.pos++
				g.InitStr = t.Lit
				g.HasStr = true
			case t.Kind == CHARLIT:
				p.pos++
				v := t.Num
				g.InitNum = &v
			default:
				return p.errorf("unsupported global initializer %s", t)
			}
		}
		p.prog.Globals = append(p.prog.Globals, g)
		if p.acceptPunct(",") {
			name, ty, err = p.parseDeclarator(base)
			if err != nil {
				return err
			}
			continue
		}
		return p.expectPunct(";")
	}
}

func (p *Parser) parseStructDef() error {
	p.next() // struct
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if _, dup := p.structs[name]; dup {
		return p.errorf("duplicate struct %q", name)
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	st := &StructType{Name: name}
	p.structs[name] = st // allow self-referential pointers
	for !p.acceptPunct("}") {
		base, err := p.parseBaseRaw()
		if err != nil {
			return err
		}
		for {
			fname, fty, err := p.parseDeclarator(base)
			if err != nil {
				return err
			}
			st.Fields = append(st.Fields, Field{Name: fname, Type: fty})
			if p.acceptPunct(",") {
				continue
			}
			break
		}
		if err := p.expectPunct(";"); err != nil {
			return err
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return err
	}
	if err := st.Layout(); err != nil {
		return err
	}
	p.prog.Structs = append(p.prog.Structs, st)
	return nil
}

func (p *Parser) parseExtern() error {
	p.next() // extern
	ret, err := p.parseBaseType()
	if err != nil {
		return err
	}
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectPunct("("); err != nil {
		return err
	}
	ext := &ExternDecl{Name: name, Ret: ret}
	if !p.acceptPunct(")") {
		for {
			if p.isPunct(".") && p.peekAt(1).Lit == "." && p.peekAt(2).Lit == "." {
				p.pos += 3
				ext.Variadic = true
				break
			}
			ty, err := p.parseBaseType()
			if err != nil {
				return err
			}
			// Optional parameter name.
			if p.peek().Kind == IDENT {
				p.pos++
			}
			ext.Params = append(ext.Params, ty)
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return err
		}
	}
	p.prog.Externs = append(p.prog.Externs, ext)
	return p.expectPunct(";")
}

func (p *Parser) parseFunc(name string, ret *Type) error {
	if err := p.expectPunct("("); err != nil {
		return err
	}
	fn := &FuncDecl{Name: name, Ret: ret}
	if !p.acceptPunct(")") {
		if p.isKeyword("void") && p.peekAt(1).Lit == ")" {
			p.pos += 2
		} else {
			for {
				base, err := p.parseBaseRaw()
				if err != nil {
					return err
				}
				pname, pty, err := p.parseDeclarator(base)
				if err != nil {
					return err
				}
				fn.Params = append(fn.Params, &VarDecl{Name: pname, Type: pty, Param: true})
				if !p.acceptPunct(",") {
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return err
			}
		}
	}
	if p.acceptPunct(";") {
		// Forward declaration: discard (names resolve against definitions,
		// which may appear in any order).
		return nil
	}
	body, err := p.parseBlock()
	if err != nil {
		return err
	}
	fn.Body = body
	p.prog.Funcs = append(p.prog.Funcs, fn)
	return nil
}

// --- statements ---

func (p *Parser) parseBlock() (*Block, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	b := &Block{}
	for !p.acceptPunct("}") {
		if p.atEOF() {
			return nil, p.errorf("unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if multi, ok := s.(*multiStmt); ok {
			b.Stmts = append(b.Stmts, multi.list...)
		} else {
			b.Stmts = append(b.Stmts, s)
		}
	}
	return b, nil
}

// multiStmt carries several DeclStmts produced by `int a, b;`.
type multiStmt struct{ list []Stmt }

func (*multiStmt) stmt() {}

func (p *Parser) parseStmt() (Stmt, error) {
	switch {
	case p.isPunct("{"):
		return p.parseBlock()
	case p.startsType():
		return p.parseDeclStmt()
	case p.isKeyword("if"):
		return p.parseIf()
	case p.isKeyword("while"):
		return p.parseWhile()
	case p.isKeyword("for"):
		return p.parseFor()
	case p.isKeyword("switch"):
		return p.parseSwitch()
	case p.isKeyword("return"):
		p.next()
		r := &Return{}
		if !p.isPunct(";") {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			r.X = x
		}
		return r, p.expectPunct(";")
	case p.isKeyword("break"):
		p.next()
		return &Break{}, p.expectPunct(";")
	case p.isKeyword("continue"):
		p.next()
		return &Continue{}, p.expectPunct(";")
	case p.acceptPunct(";"):
		return &Block{}, nil
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &ExprStmt{X: x}, p.expectPunct(";")
}

func (p *Parser) parseDeclStmt() (Stmt, error) {
	base, err := p.parseBaseRaw()
	if err != nil {
		return nil, err
	}
	var out multiStmt
	for {
		name, ty, err := p.parseDeclarator(base)
		if err != nil {
			return nil, err
		}
		d := &DeclStmt{Var: &VarDecl{Name: name, Type: ty}}
		if p.acceptPunct("=") {
			init, err := p.parseAssignExpr()
			if err != nil {
				return nil, err
			}
			d.Init = init
		}
		out.list = append(out.list, d)
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if len(out.list) == 1 {
		return out.list[0], nil
	}
	return &out, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	p.next()
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	then, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	s := &If{Cond: cond, Then: then}
	if p.acceptKeyword("else") {
		els, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		s.Else = els
	}
	return s, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	p.next()
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &While{Cond: cond, Body: body}, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	p.next()
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	f := &For{}
	if !p.isPunct(";") {
		if p.startsType() {
			d, err := p.parseDeclStmt()
			if err != nil {
				return nil, err
			}
			f.Init = d
			goto cond // parseDeclStmt consumed the ';'
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.Init = &ExprStmt{X: x}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
cond:
	if !p.isPunct(";") {
		c, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.Cond = c
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if !p.isPunct(")") {
		post, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.Post = post
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

func (p *Parser) parseSwitch() (Stmt, error) {
	p.next()
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	sw := &Switch{X: x}
	var curBody *[]Stmt
	for !p.acceptPunct("}") {
		switch {
		case p.acceptKeyword("case"):
			neg := p.acceptPunct("-")
			t := p.next()
			if t.Kind != NUMBER && t.Kind != CHARLIT {
				return nil, p.errorf("expected case constant, found %s", t)
			}
			v := t.Num
			if neg {
				v = -v
			}
			if err := p.expectPunct(":"); err != nil {
				return nil, err
			}
			c := &Case{Val: v}
			sw.Cases = append(sw.Cases, c)
			curBody = &c.Body
		case p.acceptKeyword("default"):
			if err := p.expectPunct(":"); err != nil {
				return nil, err
			}
			sw.Default = []Stmt{}
			curBody = &sw.Default
		default:
			if curBody == nil {
				return nil, p.errorf("statement before first case")
			}
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			if multi, ok := s.(*multiStmt); ok {
				*curBody = append(*curBody, multi.list...)
			} else {
				*curBody = append(*curBody, s)
			}
		}
	}
	return sw, nil
}

// --- expressions ---

func (p *Parser) parseExpr() (Expr, error) { return p.parseAssignExpr() }

var compoundOps = map[string]string{
	"+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
	"&=": "&", "|=": "|", "^=": "^",
}

func (p *Parser) parseAssignExpr() (Expr, error) {
	l, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.Kind == PUNCT {
		if t.Lit == "=" {
			p.next()
			r, err := p.parseAssignExpr()
			if err != nil {
				return nil, err
			}
			return &Assign{L: l, R: r}, nil
		}
		if base, ok := compoundOps[t.Lit]; ok {
			p.next()
			r, err := p.parseAssignExpr()
			if err != nil {
				return nil, err
			}
			// Desugar a op= b into a = a op b. The lvalue is evaluated
			// twice; our benchmarks only use side-effect-free lvalues.
			return &Assign{L: l, R: &Binary{Op: base, L: l, R: r}}, nil
		}
	}
	return l, nil
}

// Binary operator precedence, C-like.
var precTable = []map[string]bool{
	{"||": true},
	{"&&": true},
	{"|": true},
	{"^": true},
	{"&": true},
	{"==": true, "!=": true},
	{"<": true, "<=": true, ">": true, ">=": true},
	{"<<": true, ">>": true},
	{"+": true, "-": true},
	{"*": true, "/": true, "%": true},
}

func (p *Parser) parseBinary(level int) (Expr, error) {
	if level >= len(precTable) {
		return p.parseUnary()
	}
	l, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != PUNCT || !precTable[level][t.Lit] {
			return l, nil
		}
		p.next()
		r, err := p.parseBinary(level + 1)
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: t.Lit, L: l, R: r}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.peek()
	if t.Kind == PUNCT {
		switch t.Lit {
		case "-", "!", "~", "*", "&", "++", "--":
			p.next()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &Unary{Op: t.Lit, X: x}, nil
		case "(":
			// Cast?
			if p.peekAt(1).Kind == KEYWORD && p.peekAt(1).Lit != "sizeof" {
				p.next()
				ty, err := p.parseBaseType()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				x, err := p.parseUnary()
				if err != nil {
					return nil, err
				}
				return &Cast{To: ty, X: x}, nil
			}
		}
	}
	if t.Kind == KEYWORD && t.Lit == "sizeof" {
		p.next()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		s := &SizeofType{}
		if p.startsType() {
			ty, err := p.parseBaseType()
			if err != nil {
				return nil, err
			}
			s.Of = ty
		} else {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.X = x
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return s, nil
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != PUNCT {
			return x, nil
		}
		switch t.Lit {
		case "(":
			p.next()
			call := &Call{Fn: x}
			if !p.acceptPunct(")") {
				for {
					a, err := p.parseAssignExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.acceptPunct(",") {
						break
					}
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
			}
			x = call
		case "[":
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			x = &Index{Arr: x, Idx: idx}
		case ".":
			p.next()
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			x = &Member{X: x, Name: name}
		case "->":
			p.next()
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			x = &Member{X: x, Name: name, Arrow: true}
		case "++", "--":
			p.next()
			x = &Postfix{Op: t.Lit, X: x}
		default:
			return x, nil
		}
	}
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case NUMBER:
		p.next()
		return &NumLit{Val: t.Num}, nil
	case CHARLIT:
		p.next()
		return &NumLit{Val: t.Num}, nil
	case STRING:
		p.next()
		return &StrLit{Val: t.Lit}, nil
	case IDENT:
		p.next()
		return &VarRef{Name: t.Lit}, nil
	case PUNCT:
		if t.Lit == "(" {
			p.next()
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return x, p.expectPunct(")")
		}
	}
	return nil, p.errorf("expected expression, found %s", t)
}
