package gen_test

import (
	"testing"

	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
)

// Language-construct coverage: each program exercises a code-generation
// path (constant folding, char arithmetic, struct copies, pointer
// increment, logical conditions) at both a modern and the legacy profile,
// and must produce the expected exit code natively.
func TestLanguageConstructs(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want int32
	}{
		{"const-fold-arith", `
int main() { return 2*3 + (20/4) - (7%3) + (1<<4) - (64>>2) + (12&10) + (1|6) - (5^1); }`,
			2*3 + (20 / 4) - (7 % 3) + (1 << 4) - (64 >> 2) + (12 & 10) + (1 | 6) - (5 ^ 1)},
		{"const-fold-compare", `
int main() {
	int a = 0;
	if (3 < 5) a += 1;
	if (5 <= 4) a += 10;
	if (-1 > 0) a += 100;
	return a;
}`, 1},
		{"const-fold-unary", `
int main() { return -(-7) + ~(-9) + !0 + !42; }`, -(-7) + 8 + 1 + 0},
		{"char-arith", `
int main() {
	char c = 'A';
	char d = c + 2;
	char buf[4];
	buf[0] = d;
	buf[1] = 0;
	return buf[0] - 'B';     /* 'C' - 'B' = 1 */
}`, 1},
		// char signedness is implementation-defined in C and differs
		// across the substrate's compiler profiles; the -O0 profile's
		// signed-char conversion is asserted separately below.
		{"struct-copy", `
struct pt { int x; int y; int z; };
int main() {
	struct pt a;
	struct pt b;
	a.x = 3; a.y = 4; a.z = 5;
	b = a;
	a.x = 9;
	return b.x*100 + b.y*10 + b.z;   /* copy is by value: 345 */
}`, 345},
		{"struct-arg-by-pointer", `
struct pt { int x; int y; };
int norm1(struct pt *p) { return p->x + p->y; }
int main() {
	struct pt a;
	a.x = 30; a.y = 12;
	return norm1(&a);
}`, 42},
		{"pointer-incdec", `
int main() {
	int a[5];
	int i;
	for (i = 0; i < 5; i++) a[i] = i + 1;
	int *p = a;
	int s = *p++;     /* 1, p -> a[1] */
	s += *p;          /* +2 */
	p += 2;           /* p -> a[3] */
	s += *p--;        /* +4, p -> a[2] */
	s += *p;          /* +3 */
	--p;              /* p -> a[1] */
	s += *p;          /* +2 */
	return s;
}`, 12},
		{"prefix-postfix", `
int main() {
	int x = 5;
	int a = x++;      /* a=5 x=6 */
	int b = ++x;      /* b=7 x=7 */
	int c = x--;      /* c=7 x=6 */
	int d = --x;      /* d=5 x=5 */
	return a + b*10 + c*100 + d*1000;
}`, 5 + 7*10 + 7*100 + 5*1000},
		{"logical-ops", `
int side;
int t() { side += 1; return 1; }
int f() { side += 10; return 0; }
int main() {
	side = 0;
	int r = 0;
	if (f() && t()) r += 1;          /* short-circuits: side=10 */
	if (t() || f()) r += 2;          /* short-circuits: side=11 */
	if (!f() && t()) r += 4;         /* side=22 */
	return r*100 + side;
}`, 622},
		{"nested-index-expr", `
int main() {
	int m[3];
	int i;
	for (i = 0; i < 3; i++) m[i] = i * i;
	return m[m[1] + 1];   /* m[2] = 4 */
}`, 4},
		{"global-init", `
int g = 37;
int h;
int main() { h = g + 5; return h; }`, 42},
	}
	profiles := []gen.Profile{gen.GCC12O3, gen.GCC44O3, gen.GCC12O0}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			for _, prof := range profiles {
				img, err := gen.Build(c.src, prof, c.name)
				if err != nil {
					t.Fatalf("%s: %v", prof.Name, err)
				}
				res, err := machine.Execute(img, machine.Input{}, nil)
				if err != nil {
					t.Fatalf("%s: %v", prof.Name, err)
				}
				if res.ExitCode != c.want {
					t.Errorf("%s: exit = %d, want %d", prof.Name, res.ExitCode, c.want)
				}
			}
		})
	}
}

// The -O0 profile converts char to int with sign extension (GCC x86
// semantics: char is signed).
func TestCharSignExtendsAtO0(t *testing.T) {
	src := `
int main() {
	char c = 200;            /* wraps to -56 as signed char */
	int i = c;
	return i == -56;
}`
	img, err := gen.Build(src, gen.GCC12O0, "cs")
	if err != nil {
		t.Fatal(err)
	}
	res, err := machine.Execute(img, machine.Input{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 1 {
		t.Errorf("exit = %d, want 1 (char not sign-extended)", res.ExitCode)
	}
}

func TestProfileByName(t *testing.T) {
	for _, p := range gen.Profiles {
		got, ok := gen.ProfileByName(p.Name)
		if !ok || got.Name != p.Name {
			t.Errorf("ProfileByName(%q) = %v, %v", p.Name, got.Name, ok)
		}
	}
	if _, ok := gen.ProfileByName("icc-O3"); ok {
		t.Error("phantom profile resolved")
	}
}
