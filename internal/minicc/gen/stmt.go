package gen

import (
	"fmt"
	"sort"

	"wytiwyg/internal/isa"
	"wytiwyg/internal/minicc"
)

func (f *fnGen) stmt(s minicc.Stmt) error {
	b := f.b()
	switch s := s.(type) {
	case *minicc.Block:
		for _, st := range s.Stmts {
			if err := f.stmt(st); err != nil {
				return err
			}
		}
	case *minicc.DeclStmt:
		if s.Init == nil {
			return nil
		}
		as := &minicc.Assign{
			L: &minicc.VarRef{Name: s.Var.Name, Local: s.Var},
			R: s.Init,
		}
		as.L.(*minicc.VarRef).Typ = s.Var.Type
		as.Typ = s.Var.Type
		return f.evalAssign(as)
	case *minicc.ExprStmt:
		return f.eval(s.X)
	case *minicc.If:
		lThen := f.g.newLabel("then")
		lElse := f.g.newLabel("else")
		lEnd := f.g.newLabel("endif")
		if err := f.condJump(s.Cond, lThen, lElse); err != nil {
			return err
		}
		b.Label(lThen)
		if err := f.stmt(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			b.Jmp(lEnd)
			b.Label(lElse)
			if err := f.stmt(s.Else); err != nil {
				return err
			}
			b.Label(lEnd)
		} else {
			b.Label(lElse)
		}
	case *minicc.While:
		lHead := f.g.newLabel("while")
		lBody := f.g.newLabel("wbody")
		lEnd := f.g.newLabel("wend")
		b.Label(lHead)
		if err := f.condJump(s.Cond, lBody, lEnd); err != nil {
			return err
		}
		b.Label(lBody)
		f.breakLbls = append(f.breakLbls, lEnd)
		f.contLbls = append(f.contLbls, lHead)
		if err := f.stmt(s.Body); err != nil {
			return err
		}
		f.breakLbls = f.breakLbls[:len(f.breakLbls)-1]
		f.contLbls = f.contLbls[:len(f.contLbls)-1]
		b.Jmp(lHead)
		b.Label(lEnd)
	case *minicc.For:
		lHead := f.g.newLabel("for")
		lBody := f.g.newLabel("fbody")
		lPost := f.g.newLabel("fpost")
		lEnd := f.g.newLabel("fend")
		if s.Init != nil {
			if err := f.stmt(s.Init); err != nil {
				return err
			}
		}
		b.Label(lHead)
		if s.Cond != nil {
			if err := f.condJump(s.Cond, lBody, lEnd); err != nil {
				return err
			}
		}
		b.Label(lBody)
		f.breakLbls = append(f.breakLbls, lEnd)
		f.contLbls = append(f.contLbls, lPost)
		if err := f.stmt(s.Body); err != nil {
			return err
		}
		f.breakLbls = f.breakLbls[:len(f.breakLbls)-1]
		f.contLbls = f.contLbls[:len(f.contLbls)-1]
		b.Label(lPost)
		if s.Post != nil {
			if err := f.eval(s.Post); err != nil {
				return err
			}
		}
		b.Jmp(lHead)
		b.Label(lEnd)
	case *minicc.Switch:
		return f.switchStmt(s)
	case *minicc.Return:
		return f.returnStmt(s)
	case *minicc.Break:
		if len(f.breakLbls) == 0 {
			return fmt.Errorf("gen: %s: break outside loop/switch", f.fn.Name)
		}
		b.Jmp(f.breakLbls[len(f.breakLbls)-1])
	case *minicc.Continue:
		if len(f.contLbls) == 0 {
			return fmt.Errorf("gen: %s: continue outside loop", f.fn.Name)
		}
		b.Jmp(f.contLbls[len(f.contLbls)-1])
	default:
		return fmt.Errorf("gen: unknown statement %T", s)
	}
	return nil
}

func (f *fnGen) returnStmt(s *minicc.Return) error {
	b := f.b()
	if s.X != nil {
		// Tail call: return f(...) with a matching argument count becomes a
		// jump after the epilogue (§5.1 of the paper: the pattern function
		// recovery must untangle).
		if call, ok := s.X.(*minicc.Call); ok && f.prof.TailCalls {
			if vr, ok := call.Fn.(*minicc.VarRef); ok && vr.Func != nil &&
				len(call.Args) == len(f.fn.Params) && f.pushDepth == 0 {
				return f.tailCall(call, vr.Func)
			}
		}
		if err := f.eval(s.X); err != nil {
			return err
		}
	} else {
		b.MovI(isa.EAX, 0)
	}
	b.Jmp(f.epilogue)
	return nil
}

// tailCall evaluates the outgoing arguments, overwrites the incoming
// argument slots, runs the epilogue, and jumps to the target (leaving the
// caller's return address on the stack).
func (f *fnGen) tailCall(call *minicc.Call, target *minicc.FuncDecl) error {
	b := f.b()
	n := len(call.Args)
	// Evaluate all arguments first (they may read the current parameters),
	// parking them on the stack.
	for i := 0; i < n; i++ {
		if err := f.eval(call.Args[i]); err != nil {
			return err
		}
		f.push(isa.EAX)
	}
	// Pop into the incoming argument slots, last first.
	for i := n - 1; i >= 0; i-- {
		f.pop(isa.ECX)
		b.Store(f.paramSlotMem(i), isa.ECX, 4)
	}
	// Epilogue without ret.
	if f.prof.FramePointer {
		if f.frameSize > 0 {
			b.BinI(isa.ADDI, isa.ESP, f.frameSize)
		}
		for i := len(f.saved) - 1; i >= 0; i-- {
			b.Pop(f.saved[i])
		}
		b.Pop(isa.EBP)
	} else {
		if f.frameSize > 0 {
			b.BinI(isa.ADDI, isa.ESP, f.frameSize)
		}
		for i := len(f.saved) - 1; i >= 0; i-- {
			b.Pop(f.saved[i])
		}
	}
	b.Jmp(target.Name)
	return nil
}

// switchStmt lowers a switch: dense cases through a jump table (O3
// profiles), otherwise a compare chain.
func (f *fnGen) switchStmt(s *minicc.Switch) error {
	b := f.b()
	lEnd := f.g.newLabel("swend")
	lDefault := lEnd
	if s.Default != nil {
		lDefault = f.g.newLabel("swdef")
	}
	caseLbls := make(map[int32]string, len(s.Cases))
	var vals []int32
	for _, c := range s.Cases {
		caseLbls[c.Val] = f.g.newLabel("case")
		vals = append(vals, c.Val)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })

	if err := f.eval(s.X); err != nil {
		return err
	}

	dense := false
	if len(vals) >= 4 && f.prof.JumpTables {
		span := int64(vals[len(vals)-1]) - int64(vals[0]) + 1
		if span <= int64(3*len(vals)) && span < 512 {
			dense = true
		}
	}
	if dense {
		mn, mx := vals[0], vals[len(vals)-1]
		labels := make([]string, mx-mn+1)
		for i := range labels {
			labels[i] = lDefault
		}
		for v, l := range caseLbls {
			labels[v-mn] = l
		}
		tbl := f.g.newLabel("swtbl")[1:] // data symbol name, no leading dot
		b.JumpTable(tbl, labels...)
		if mn != 0 {
			b.BinI(isa.SUBI, isa.EAX, mn)
		}
		b.CmpI(isa.EAX, mx-mn+1)
		b.Jcc(isa.CondAE, lDefault) // unsigned: also catches values below mn
		i := b.Emit(isa.Instr{Op: isa.LOAD, Dst: isa.ECX, Size: 4,
			Mem: isa.MemRef{Base: isa.NoReg, Index: isa.EAX, Scale: 4}})
		b.FixDataDisp(i, tbl, 0)
		b.JmpR(isa.ECX)
	} else {
		for _, c := range s.Cases {
			b.CmpI(isa.EAX, c.Val)
			b.Jcc(isa.CondEQ, caseLbls[c.Val])
		}
		b.Jmp(lDefault)
	}

	f.breakLbls = append(f.breakLbls, lEnd)
	for _, c := range s.Cases {
		b.Label(caseLbls[c.Val])
		for _, st := range c.Body {
			if err := f.stmt(st); err != nil {
				return err
			}
		}
		// Fall through to the next case, C style.
	}
	if s.Default != nil {
		b.Label(lDefault)
		for _, st := range s.Default {
			if err := f.stmt(st); err != nil {
				return err
			}
		}
	}
	f.breakLbls = f.breakLbls[:len(f.breakLbls)-1]
	b.Label(lEnd)
	return nil
}
