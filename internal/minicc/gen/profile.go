// Package gen lowers checked mini-C programs to machine code. A Profile
// selects the "compiler personality": the reproduction's stand-in for
// building SPEC binaries with GCC 12.2, Clang 16 or GCC 4.4 at -O0/-O3.
// The profiles differ exactly along the axes the paper's analyses care
// about: frame-pointer usage, how many locals live in callee-saved
// registers, pointer-loop strength reduction (the end-pointer pattern of the
// paper's Figure 3), jump tables, tail calls, sub-register char moves (the
// "false derive" source of §4.2.3), and expression-level quality.
package gen

// Profile configures code generation.
type Profile struct {
	// Name identifies the configuration in reports ("gcc12-O3", ...).
	Name string
	// FramePointer keeps EBP-based frames; modern -O3 omits them.
	FramePointer bool
	// NumRegVars is how many of EBX/ESI/EDI may hold hot scalars.
	NumRegVars int
	// PtrLoops strength-reduces counted array loops into pointer/end-pointer
	// loops.
	PtrLoops bool
	// LeafOps folds leaf operands into ALU ops instead of push/pop
	// temporaries.
	LeafOps bool
	// ConstFold folds constant expressions.
	ConstFold bool
	// JumpTables lowers dense switches through indirect jumps.
	JumpTables bool
	// TailCalls turns eligible `return f(...)` into jumps.
	TailCalls bool
	// SubregChar uses sub-register byte moves for char-to-char copies,
	// leaving the destination register's upper bits stale.
	SubregChar bool
}

// The four evaluation configurations of the paper's Table 1.
var (
	// GCC12O3 models a current GCC at -O3.
	GCC12O3 = Profile{
		Name: "gcc12-O3", FramePointer: false, NumRegVars: 3, PtrLoops: true,
		LeafOps: true, ConstFold: true, JumpTables: true, TailCalls: true,
	}
	// GCC12O0 models a current GCC with optimization disabled: everything
	// lives on the stack and every expression round-trips through memory.
	GCC12O0 = Profile{
		Name: "gcc12-O0", FramePointer: true,
	}
	// Clang16O3 models a current Clang at -O3 (slightly different register
	// budget, sub-register byte moves).
	Clang16O3 = Profile{
		Name: "clang16-O3", FramePointer: false, NumRegVars: 2, PtrLoops: true,
		LeafOps: true, ConstFold: true, JumpTables: true, TailCalls: true,
		SubregChar: true,
	}
	// GCC44O3 models a legacy GCC 4.4 at -O3: frame pointers, a weak
	// register allocator, no pointer-loop strength reduction, no tail
	// calls — optimized for its day but far from today's code quality.
	GCC44O3 = Profile{
		Name: "gcc44-O3", FramePointer: true, NumRegVars: 1, PtrLoops: false,
		LeafOps: true, ConstFold: true, JumpTables: true, TailCalls: false,
	}
)

// Profiles lists the evaluation configurations in Table 1 column order.
var Profiles = []Profile{GCC12O3, GCC12O0, Clang16O3, GCC44O3}

// ProfileByName returns a named profile.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
