package gen

import (
	"fmt"
	"sort"

	"wytiwyg/internal/asm"
	"wytiwyg/internal/isa"
	"wytiwyg/internal/layout"
	"wytiwyg/internal/minicc"
	"wytiwyg/internal/obj"
)

// Compile lowers a checked program to a binary image. The image's entry
// point is a tiny _start stub that calls main and halts with its return
// value. The ground-truth stack layout of every function is recorded in the
// image's Truth side-table.
func Compile(prog *minicc.Program, prof Profile, name string) (*obj.Image, error) {
	if prog.FindFunc("main") == nil {
		return nil, fmt.Errorf("gen: program has no main")
	}
	g := &gen{prog: prog, prof: prof, b: asm.NewBuilder(name)}
	if err := g.emitGlobals(); err != nil {
		return nil, err
	}
	// Entry stub.
	g.b.Func("_start")
	g.b.Call("main")
	g.b.Halt()
	for _, f := range prog.Funcs {
		if prof.PtrLoops {
			rewritePtrLoops(f)
		}
		if prof.ConstFold {
			foldFunc(f)
		}
		fg := &fnGen{g: g, fn: f, prof: prof}
		if err := fg.emit(); err != nil {
			return nil, err
		}
	}
	return g.b.Link("_start")
}

// Build parses, checks and compiles in one step.
func Build(src string, prof Profile, name string) (*obj.Image, error) {
	prog, err := minicc.Compile(src)
	if err != nil {
		return nil, err
	}
	return Compile(prog, prof, name)
}

type gen struct {
	prog *minicc.Program
	prof Profile
	b    *asm.Builder
	lbl  int
}

func (g *gen) newLabel(hint string) string {
	g.lbl++
	return fmt.Sprintf(".%s_%d", hint, g.lbl)
}

func (g *gen) emitGlobals() error {
	for _, gl := range g.prog.Globals {
		switch {
		case gl.HasStr:
			if gl.Type.Kind != minicc.TPtr || gl.Type.Elem.Kind != minicc.TChar {
				return fmt.Errorf("gen: global %q: string initializer requires char*", gl.Name)
			}
			addr := g.b.Asciz("", gl.InitStr)
			g.b.Words(gl.Name, addr)
		case gl.InitNum != nil:
			switch gl.Type.Size() {
			case 4:
				g.b.Words(gl.Name, uint32(*gl.InitNum))
			case 1:
				g.b.Bytes(gl.Name, []byte{byte(*gl.InitNum)})
			default:
				return fmt.Errorf("gen: global %q: unsupported initializer", gl.Name)
			}
		default:
			g.b.Space(gl.Name, gl.Type.Size(), gl.Type.Align())
		}
	}
	return nil
}

// regVarPool is the set of callee-saved registers available for locals, in
// allocation order.
var regVarPool = [3]isa.Reg{isa.EBX, isa.ESI, isa.EDI}

// loc is a variable's storage location.
type loc struct {
	inReg bool
	reg   isa.Reg
	// off is the frame offset: FP mode, relative to EBP (negative for
	// locals, +8.. for params); SP mode, relative to ESP just after the
	// prologue (>= 0).
	off     int32
	isParam bool
	idx     int // parameter index
}

type fnGen struct {
	g    *gen
	fn   *minicc.FuncDecl
	prof Profile

	locs      map[*minicc.VarDecl]loc
	saved     []isa.Reg // callee-saved registers pushed in the prologue
	frameSize int32
	pushDepth int32 // bytes pushed beyond the prologue (SP-relative fixup)
	epilogue  string

	breakLbls []string
	contLbls  []string

	// tempSlots records the sp0-relative offsets of expression-temporary
	// push slots, included in the ground truth the way LLVM's stack frame
	// layout lists spill slots. argSlots records outgoing-argument pushes;
	// offsets serving both purposes count as call plumbing, not objects.
	tempSlots map[int32]bool
	argSlots  map[int32]bool
	// inArgPush suppresses temp recording while pushing call arguments
	// (outgoing argument slots are call plumbing, not stack objects).
	inArgPush bool
}

func (f *fnGen) b() *asm.Builder { return f.g.b }

// countUses tallies how often each variable is referenced, weighting
// references inside loops 8x per nesting level, to rank register-allocation
// candidates the way a real allocator's spill heuristic would.
func countUses(fn *minicc.FuncDecl) map[*minicc.VarDecl]int {
	uses := map[*minicc.VarDecl]int{}
	var we func(e minicc.Expr, w int)
	var ws func(s minicc.Stmt, w int)
	we = func(e minicc.Expr, w int) {
		switch e := e.(type) {
		case *minicc.VarRef:
			if e.Local != nil {
				uses[e.Local] += w
			}
		case *minicc.Unary:
			we(e.X, w)
		case *minicc.Postfix:
			we(e.X, w)
		case *minicc.Binary:
			we(e.L, w)
			we(e.R, w)
		case *minicc.Assign:
			we(e.L, w)
			we(e.R, w)
		case *minicc.Call:
			we(e.Fn, w)
			for _, a := range e.Args {
				we(a, w)
			}
		case *minicc.Index:
			we(e.Arr, w)
			we(e.Idx, w)
		case *minicc.Member:
			we(e.X, w)
		case *minicc.Cast:
			we(e.X, w)
		}
	}
	ws = func(s minicc.Stmt, w int) {
		const loopWeight = 8
		switch s := s.(type) {
		case *minicc.Block:
			for _, st := range s.Stmts {
				ws(st, w)
			}
		case *minicc.DeclStmt:
			if s.Init != nil {
				we(s.Init, w)
			}
		case *minicc.ExprStmt:
			we(s.X, w)
		case *minicc.If:
			we(s.Cond, w)
			ws(s.Then, w)
			if s.Else != nil {
				ws(s.Else, w)
			}
		case *minicc.While:
			we(s.Cond, w*loopWeight)
			ws(s.Body, w*loopWeight)
		case *minicc.For:
			if s.Init != nil {
				ws(s.Init, w)
			}
			if s.Cond != nil {
				we(s.Cond, w*loopWeight)
			}
			if s.Post != nil {
				we(s.Post, w*loopWeight)
			}
			ws(s.Body, w*loopWeight)
		case *minicc.Switch:
			we(s.X, w)
			for _, cs := range s.Cases {
				for _, st := range cs.Body {
					ws(st, w)
				}
			}
			for _, st := range s.Default {
				ws(st, w)
			}
		case *minicc.Return:
			if s.X != nil {
				we(s.X, w)
			}
		}
	}
	ws(fn.Body, 1)
	return uses
}

// assignLocations decides register vs stack placement and computes the
// frame layout plus the ground-truth side-table entry.
func (f *fnGen) assignLocations() {
	f.locs = make(map[*minicc.VarDecl]loc)
	uses := countUses(f.fn)

	// Rank register candidates: scalar, address never taken.
	var cands []*minicc.VarDecl
	for _, v := range f.fn.Locals {
		if v.Type.IsScalar() && !v.AddrTaken {
			cands = append(cands, v)
		}
	}
	for _, v := range f.fn.Params {
		if v.Type.IsScalar() && !v.AddrTaken {
			cands = append(cands, v)
		}
	}
	sort.SliceStable(cands, func(i, j int) bool {
		ui, uj := uses[cands[i]], uses[cands[j]]
		if ui != uj {
			return ui > uj
		}
		return cands[i].Seq < cands[j].Seq
	})
	n := f.prof.NumRegVars
	if n > len(regVarPool) {
		n = len(regVarPool)
	}
	for i := 0; i < len(cands) && i < n; i++ {
		r := regVarPool[i]
		f.locs[cands[i]] = loc{inReg: true, reg: r, isParam: cands[i].Param, idx: paramIndex(f.fn, cands[i])}
		f.saved = append(f.saved, r)
	}

	// Stack slots for everything else, in declaration order, aligned.
	// O3 profiles drop locals that are never referenced (the pointer-loop
	// rewrite can orphan the original induction variable).
	var off int32 // running size of the local area
	for _, v := range f.fn.Locals {
		if _, ok := f.locs[v]; ok {
			continue
		}
		if f.prof.LeafOps && uses[v] == 0 {
			f.locs[v] = loc{inReg: true, reg: isa.NoReg} // dropped entirely
			continue
		}
		sz := int32(v.Type.Size())
		al := int32(v.Type.Align())
		off = (off + sz + al - 1) &^ (al - 1)
		if f.prof.FramePointer {
			// Saved regs sit just below EBP; locals below them.
			f.locs[v] = loc{off: -int32(4*len(f.saved)) - off}
		} else {
			f.locs[v] = loc{off: -off} // placeholder; rebased below
		}
	}
	f.frameSize = (off + 3) &^ 3
	if !f.prof.FramePointer {
		// SP mode: rebase local offsets to [0, frameSize).
		for v, l := range f.locs {
			if !l.inReg && !v.Param {
				l.off = f.frameSize + l.off
				f.locs[v] = l
			}
		}
	}
	// Parameters on the stack.
	for i, v := range f.fn.Params {
		if l, ok := f.locs[v]; ok && l.inReg {
			continue
		}
		if f.prof.FramePointer {
			f.locs[v] = loc{off: 8 + int32(4*i), isParam: true, idx: i}
		} else {
			f.locs[v] = loc{isParam: true, idx: i}
		}
	}
}

func paramIndex(fn *minicc.FuncDecl, v *minicc.VarDecl) int {
	for i, p := range fn.Params {
		if p == v {
			return i
		}
	}
	return -1
}

// sp0Offset converts a local's frame slot to an offset relative to sp0 (the
// stack pointer at function entry, pointing at the return address), for the
// ground-truth side-table.
func (f *fnGen) sp0Offset(l loc) int32 {
	if f.prof.FramePointer {
		// EBP = sp0 - 4.
		return l.off - 4
	}
	// ESP after prologue = sp0 - 4*len(saved) - frameSize.
	return l.off - int32(4*len(f.saved)) - f.frameSize
}

// truthType lowers a mini-C type to the recovered-type lattice for the
// typed ground-truth side-table: int→int32, char→int8, pointers (incl.
// function pointers) → ptr(T), arrays and structs structurally. Void
// (which cannot be a local's type) falls back to top.
func truthType(t *minicc.Type) *layout.Type {
	switch t.Kind {
	case minicc.TInt:
		return layout.Int32
	case minicc.TChar:
		return layout.Int8
	case minicc.TPtr:
		return layout.PtrTo(truthType(t.Elem))
	case minicc.TFnPtr:
		return layout.PtrTo(nil)
	case minicc.TArray:
		return layout.ArrayOf(truthType(t.Elem), uint32(t.Len))
	case minicc.TStruct:
		fields := make([]layout.TField, 0, len(t.Struct.Fields))
		for _, fl := range t.Struct.Fields {
			fields = append(fields, layout.TField{Off: fl.Offset, Type: truthType(fl.Type)})
		}
		return layout.StructOf(fields)
	}
	return layout.Top
}

// recordTruth emits the ground-truth frame for this function: every
// stack-resident local plus the saved-register and expression-spill slots,
// matching what LLVM's Stack Frame Layout analysis lists (register-
// allocated scalars are not stack objects). Spill slots are appended by
// finishTruth once code generation knows them. The typed side-table gets
// the same slots with their declared types (saved-register and spill
// slots are int32: they hold one machine word).
func (f *fnGen) recordTruth() (*layout.Frame, *layout.TypedFrame) {
	fr := &layout.Frame{Func: f.fn.Name}
	tf := &layout.TypedFrame{Func: f.fn.Name}
	add := func(v layout.Var, t *layout.Type) {
		fr.Vars = append(fr.Vars, v)
		tf.Vars = append(tf.Vars, layout.TypedVar{Var: v, Type: t})
	}
	for _, v := range f.fn.Locals {
		l := f.locs[v]
		if l.inReg {
			continue
		}
		add(layout.Var{
			Name:   v.Name,
			Offset: f.sp0Offset(l),
			Size:   v.Type.Size(),
		}, truthType(v.Type))
	}
	// Saved-register slots.
	off := int32(0)
	if f.prof.FramePointer {
		add(layout.Var{Name: "__sav_ebp", Offset: -4, Size: 4}, layout.Int32)
		off = -4
	}
	for _, r := range f.saved {
		off -= 4
		add(layout.Var{Name: "__sav_" + r.String(), Offset: off, Size: 4}, layout.Int32)
	}
	return fr, tf
}

// finishTruth adds the expression-temporary slots and registers the frame.
// Slots that double as outgoing call arguments are call plumbing and stay
// out of the layout (both sides of the Figure 7 comparison treat them so).
func (f *fnGen) finishTruth(fr *layout.Frame, tf *layout.TypedFrame) {
	for off := range f.tempSlots {
		if f.argSlots[off] {
			continue
		}
		fr.Vars = append(fr.Vars, layout.Var{Name: "__spill", Offset: off, Size: 4})
		tf.Vars = append(tf.Vars, layout.TypedVar{
			Var:  layout.Var{Name: "__spill", Offset: off, Size: 4},
			Type: layout.Int32,
		})
	}
	fr.Sort()
	tf.Sort()
	f.b().Truth(fr)
	f.b().TypedTruth(tf)
}

// frameMem returns the current memory operand for a stack-resident
// variable, accounting for push depth in SP mode.
func (f *fnGen) frameMem(v *minicc.VarDecl) isa.MemRef {
	l := f.locs[v]
	if l.inReg {
		panic("gen: frameMem of register variable")
	}
	if f.prof.FramePointer {
		return asm.Mem(isa.EBP, l.off)
	}
	if l.isParam {
		return asm.Mem(isa.ESP, f.spToArgBase()+int32(4*l.idx))
	}
	return asm.Mem(isa.ESP, l.off+f.pushDepth)
}

// spToArgBase is the current ESP-relative offset of incoming argument 0.
func (f *fnGen) spToArgBase() int32 {
	return f.frameSize + int32(4*len(f.saved)) + 4 + f.pushDepth
}

func (f *fnGen) emit() error {
	f.assignLocations()
	fr, tf := f.recordTruth()
	defer f.finishTruth(fr, tf)
	b := f.b()
	b.Func(f.fn.Name)
	f.epilogue = f.g.newLabel(f.fn.Name + "_ret")

	// Prologue.
	if f.prof.FramePointer {
		b.Push(isa.EBP)
		b.Mov(isa.EBP, isa.ESP)
		for _, r := range f.saved {
			b.Push(r)
		}
		if f.frameSize > 0 {
			b.BinI(isa.SUBI, isa.ESP, f.frameSize)
		}
	} else {
		for _, r := range f.saved {
			b.Push(r)
		}
		if f.frameSize > 0 {
			b.BinI(isa.SUBI, isa.ESP, f.frameSize)
		}
	}
	// Copy register-allocated parameters into their registers.
	for _, v := range f.fn.Params {
		l := f.locs[v]
		if l.inReg {
			b.Load(l.reg, f.paramSlotMem(l.idx), 4, false)
		}
	}

	if err := f.stmt(f.fn.Body); err != nil {
		return err
	}
	// Fall-through return (void or missing return): return 0.
	b.MovI(isa.EAX, 0)

	b.Label(f.epilogue)
	if f.prof.FramePointer {
		if f.frameSize > 0 {
			b.BinI(isa.ADDI, isa.ESP, f.frameSize)
		}
		for i := len(f.saved) - 1; i >= 0; i-- {
			b.Pop(f.saved[i])
		}
		b.Pop(isa.EBP)
	} else {
		if f.frameSize > 0 {
			b.BinI(isa.ADDI, isa.ESP, f.frameSize)
		}
		for i := len(f.saved) - 1; i >= 0; i-- {
			b.Pop(f.saved[i])
		}
	}
	b.Ret()
	return nil
}

// paramSlotMem is the stack slot of parameter i (for prologue copies and
// tail-call argument stores).
func (f *fnGen) paramSlotMem(i int) isa.MemRef {
	if f.prof.FramePointer {
		return asm.Mem(isa.EBP, 8+int32(4*i))
	}
	return asm.Mem(isa.ESP, f.spToArgBase()+int32(4*i))
}

// curSP0 returns ESP's current offset from sp0.
func (f *fnGen) curSP0() int32 {
	off := -int32(4*len(f.saved)) - f.frameSize - f.pushDepth
	if f.prof.FramePointer {
		off -= 4 // the saved frame pointer itself
	}
	return off
}

func (f *fnGen) push(r isa.Reg) {
	f.noteSlot()
	f.b().Push(r)
	f.pushDepth += 4
}

// noteSlot records where the next push lands.
func (f *fnGen) noteSlot() {
	off := f.curSP0() - 4
	if f.inArgPush {
		if f.argSlots == nil {
			f.argSlots = make(map[int32]bool)
		}
		f.argSlots[off] = true
		return
	}
	if f.tempSlots == nil {
		f.tempSlots = make(map[int32]bool)
	}
	f.tempSlots[off] = true
}

func (f *fnGen) pushI(v int32) {
	f.noteSlot()
	f.b().PushI(v)
	f.pushDepth += 4
}

func (f *fnGen) pop(r isa.Reg) {
	f.b().Pop(r)
	f.pushDepth -= 4
}
