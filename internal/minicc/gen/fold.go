package gen

import "wytiwyg/internal/minicc"

// AST-level optimizations applied by the O3 profiles before lowering:
// constant folding and the pointer-loop strength reduction the paper's
// Figure 3 illustrates (counted array loops become pointer iteration with
// an end pointer one past the array).

// foldFunc folds constant subexpressions in place.
func foldFunc(fn *minicc.FuncDecl) {
	foldStmt(fn.Body)
}

func foldStmt(s minicc.Stmt) {
	switch s := s.(type) {
	case *minicc.Block:
		for _, st := range s.Stmts {
			foldStmt(st)
		}
	case *minicc.DeclStmt:
		if s.Init != nil {
			s.Init = foldExpr(s.Init)
		}
	case *minicc.ExprStmt:
		s.X = foldExpr(s.X)
	case *minicc.If:
		s.Cond = foldExpr(s.Cond)
		foldStmt(s.Then)
		if s.Else != nil {
			foldStmt(s.Else)
		}
	case *minicc.While:
		s.Cond = foldExpr(s.Cond)
		foldStmt(s.Body)
	case *minicc.For:
		if s.Init != nil {
			foldStmt(s.Init)
		}
		if s.Cond != nil {
			s.Cond = foldExpr(s.Cond)
		}
		if s.Post != nil {
			s.Post = foldExpr(s.Post)
		}
		foldStmt(s.Body)
	case *minicc.Switch:
		s.X = foldExpr(s.X)
		for _, c := range s.Cases {
			for _, st := range c.Body {
				foldStmt(st)
			}
		}
		for _, st := range s.Default {
			foldStmt(st)
		}
	case *minicc.Return:
		if s.X != nil {
			s.X = foldExpr(s.X)
		}
	}
}

func numVal(e minicc.Expr) (int32, bool) {
	switch e := e.(type) {
	case *minicc.NumLit:
		return e.Val, true
	case *minicc.SizeofType:
		if e.Of != nil {
			return int32(e.Of.Size()), true
		}
	}
	return 0, false
}

func mkNum(v int32) *minicc.NumLit {
	n := &minicc.NumLit{Val: v}
	n.Typ = minicc.IntType
	return n
}

func foldExpr(e minicc.Expr) minicc.Expr {
	switch e := e.(type) {
	case *minicc.Unary:
		e.X = foldExpr(e.X)
		if v, ok := numVal(e.X); ok {
			switch e.Op {
			case "-":
				return mkNum(-v)
			case "~":
				return mkNum(^v)
			case "!":
				if v == 0 {
					return mkNum(1)
				}
				return mkNum(0)
			}
		}
	case *minicc.Postfix:
		e.X = foldExpr(e.X)
	case *minicc.Binary:
		e.L = foldExpr(e.L)
		e.R = foldExpr(e.R)
		lv, lok := numVal(e.L)
		rv, rok := numVal(e.R)
		if lok && rok {
			if v, ok := foldBin(e.Op, lv, rv); ok {
				return mkNum(v)
			}
		}
		// Algebraic identities.
		if rok {
			switch {
			case rv == 0 && (e.Op == "+" || e.Op == "-" || e.Op == "|" || e.Op == "^" || e.Op == "<<" || e.Op == ">>"):
				return e.L
			case rv == 1 && (e.Op == "*" || e.Op == "/"):
				return e.L
			}
		}
		if lok && lv == 0 && e.Op == "+" {
			return e.R
		}
	case *minicc.Assign:
		e.L = foldExpr(e.L)
		e.R = foldExpr(e.R)
	case *minicc.Call:
		for i := range e.Args {
			e.Args[i] = foldExpr(e.Args[i])
		}
	case *minicc.Index:
		e.Arr = foldExpr(e.Arr)
		e.Idx = foldExpr(e.Idx)
	case *minicc.Member:
		e.X = foldExpr(e.X)
	case *minicc.Cast:
		e.X = foldExpr(e.X)
		if v, ok := numVal(e.X); ok && e.To.IsInteger() {
			if e.To.Kind == minicc.TChar {
				return mkNum(int32(int8(v)))
			}
			return mkNum(v)
		}
	case *minicc.SizeofType:
		if e.Of != nil {
			return mkNum(int32(e.Of.Size()))
		}
	}
	return e
}

func foldBin(op string, a, b int32) (int32, bool) {
	switch op {
	case "+":
		return a + b, true
	case "-":
		return a - b, true
	case "*":
		return a * b, true
	case "/":
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case "%":
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case "&":
		return a & b, true
	case "|":
		return a | b, true
	case "^":
		return a ^ b, true
	case "<<":
		return a << (uint32(b) & 31), true
	case ">>":
		return a >> (uint32(b) & 31), true
	case "==":
		return b2i(a == b), true
	case "!=":
		return b2i(a != b), true
	case "<":
		return b2i(a < b), true
	case "<=":
		return b2i(a <= b), true
	case ">":
		return b2i(a > b), true
	case ">=":
		return b2i(a >= b), true
	}
	return 0, false
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

// --- pointer-loop strength reduction (Figure 3) ---

// rewritePtrLoops rewrites counted loops over local arrays,
//
//	for (i = 0; i < N; i++) { ... arr[i] ... }
//
// into pointer iteration with an end pointer one past the array:
//
//	T *p = arr; T *end = arr + N;
//	for (; p != end; p++) { ... *p ... }
//
// This reproduces the code shape the paper highlights: the loop-bound
// pointer is out of bounds of the object it refers to, and must not be
// assumed to lie inside it by the bounds-recovery analysis (§4.2.4).
func rewritePtrLoops(fn *minicc.FuncDecl) {
	var walk func(s minicc.Stmt)
	walk = func(s minicc.Stmt) {
		switch s := s.(type) {
		case *minicc.Block:
			for i, st := range s.Stmts {
				if fo, ok := st.(*minicc.For); ok {
					if repl := tryPtrLoop(fn, fo); repl != nil {
						s.Stmts[i] = repl
						continue
					}
				}
				walk(st)
			}
		case *minicc.If:
			walk(s.Then)
			if s.Else != nil {
				walk(s.Else)
			}
		case *minicc.While:
			walk(s.Body)
		case *minicc.For:
			walk(s.Body)
		case *minicc.Switch:
			for _, c := range s.Cases {
				for _, st := range c.Body {
					walk(st)
				}
			}
			for _, st := range s.Default {
				walk(st)
			}
		}
	}
	walk(fn.Body)
}

// tryPtrLoop matches the transformable pattern and builds the replacement,
// or returns nil.
func tryPtrLoop(fn *minicc.FuncDecl, fo *minicc.For) minicc.Stmt {
	// Induction variable: `i = 0` init (ExprStmt) or `int i = 0` decl.
	var iv *minicc.VarDecl
	switch init := fo.Init.(type) {
	case *minicc.ExprStmt:
		as, ok := init.X.(*minicc.Assign)
		if !ok {
			return nil
		}
		vr, ok := as.L.(*minicc.VarRef)
		if !ok || vr.Local == nil {
			return nil
		}
		if n, ok := as.R.(*minicc.NumLit); !ok || n.Val != 0 {
			return nil
		}
		iv = vr.Local
	case *minicc.DeclStmt:
		if init.Init == nil {
			return nil
		}
		if n, ok := init.Init.(*minicc.NumLit); !ok || n.Val != 0 {
			return nil
		}
		iv = init.Var
	default:
		return nil
	}
	if iv.Type.Kind != minicc.TInt || iv.AddrTaken {
		return nil
	}
	// Condition: i < N with constant N.
	cond, ok := fo.Cond.(*minicc.Binary)
	if !ok || cond.Op != "<" {
		return nil
	}
	cvr, ok := cond.L.(*minicc.VarRef)
	if !ok || cvr.Local != iv {
		return nil
	}
	bound, ok := numVal(cond.R)
	if !ok || bound <= 0 {
		return nil
	}
	// Post: i++ / ++i / i = i + 1 / i += 1.
	if !isIncOf(fo.Post, iv) {
		return nil
	}
	// Body: every use of iv must be arr[iv] for one fixed local array of
	// exactly `bound` elements, and nothing may write iv or take its
	// address.
	var arr *minicc.VarDecl
	okBody := true
	var scan func(e minicc.Expr, parentIsIndex bool)
	scanStmt := func(s minicc.Stmt) {}
	scan = func(e minicc.Expr, parentIndexed bool) {
		switch e := e.(type) {
		case *minicc.VarRef:
			if e.Local == iv && !parentIndexed {
				okBody = false
			}
		case *minicc.Unary:
			scan(e.X, false)
		case *minicc.Postfix:
			scan(e.X, false)
		case *minicc.Binary:
			scan(e.L, false)
			scan(e.R, false)
		case *minicc.Assign:
			scan(e.L, false)
			scan(e.R, false)
		case *minicc.Call:
			for _, a := range e.Args {
				scan(a, false)
			}
		case *minicc.Index:
			idxRef, isIV := e.Idx.(*minicc.VarRef)
			base, isVar := e.Arr.(*minicc.VarRef)
			if isIV && idxRef.Local == iv {
				if !isVar || base.Local == nil || base.Local.Type.Kind != minicc.TArray ||
					base.Local.Type.Len != int(bound) {
					okBody = false
					return
				}
				if arr == nil {
					arr = base.Local
				} else if arr != base.Local {
					okBody = false
					return
				}
				return // arr[iv]: the rewrite target; don't descend
			}
			scan(e.Arr, false)
			scan(e.Idx, false)
		case *minicc.Member:
			scan(e.X, false)
		case *minicc.Cast:
			scan(e.X, false)
		}
	}
	var walkBody func(s minicc.Stmt)
	walkBody = func(s minicc.Stmt) {
		switch s := s.(type) {
		case *minicc.Block:
			for _, st := range s.Stmts {
				walkBody(st)
			}
		case *minicc.DeclStmt:
			if s.Init != nil {
				scan(s.Init, false)
			}
		case *minicc.ExprStmt:
			scan(s.X, false)
		case *minicc.If:
			scan(s.Cond, false)
			walkBody(s.Then)
			if s.Else != nil {
				walkBody(s.Else)
			}
		case *minicc.While:
			scan(s.Cond, false)
			walkBody(s.Body)
		case *minicc.For:
			okBody = false // nested counted loops: stay conservative
		case *minicc.Switch:
			okBody = false
		case *minicc.Return:
			okBody = false // leaving mid-loop: keep the index form
		case *minicc.Break, *minicc.Continue:
			okBody = false
		}
	}
	_ = scanStmt
	walkBody(fo.Body)
	if !okBody || arr == nil {
		return nil
	}

	// Build:  { T *p = arr; T *end = arr + N; for (; p != end; p++) body' }
	elemT := arr.Type.Elem
	ptrT := minicc.PtrTo(elemT)
	p := &minicc.VarDecl{Name: "p$" + iv.Name, Type: ptrT, Seq: iv.Seq}
	end := &minicc.VarDecl{Name: "end$" + iv.Name, Type: ptrT, Seq: iv.Seq + 1}
	fn.Locals = append(fn.Locals, p, end)

	arrRef := func() *minicc.VarRef {
		r := &minicc.VarRef{Name: arr.Name, Local: arr}
		r.Typ = arr.Type
		return r
	}
	pRef := func() *minicc.VarRef {
		r := &minicc.VarRef{Name: p.Name, Local: p}
		r.Typ = ptrT
		return r
	}
	endRef := func() *minicc.VarRef {
		r := &minicc.VarRef{Name: end.Name, Local: end}
		r.Typ = ptrT
		return r
	}

	// Replace arr[iv] with *p in the body.
	replaceIndexUses(fo.Body, arr, iv, pRef)

	declP := &minicc.DeclStmt{Var: p, Init: arrRef()}
	endInit := &minicc.Binary{Op: "+", L: arrRef(), R: mkNum(bound)}
	endInit.Typ = ptrT
	declEnd := &minicc.DeclStmt{Var: end, Init: endInit}

	condNE := &minicc.Binary{Op: "!=", L: pRef(), R: endRef()}
	condNE.Typ = minicc.IntType
	post := &minicc.Postfix{Op: "++", X: pRef()}
	post.Typ = ptrT

	newFor := &minicc.For{Cond: condNE, Post: post, Body: fo.Body}
	return &minicc.Block{Stmts: []minicc.Stmt{declP, declEnd, newFor}}
}

func isIncOf(e minicc.Expr, v *minicc.VarDecl) bool {
	switch e := e.(type) {
	case *minicc.Postfix:
		vr, ok := e.X.(*minicc.VarRef)
		return ok && e.Op == "++" && vr.Local == v
	case *minicc.Unary:
		vr, ok := e.X.(*minicc.VarRef)
		return ok && e.Op == "++" && vr.Local == v
	case *minicc.Assign:
		vr, ok := e.L.(*minicc.VarRef)
		if !ok || vr.Local != v {
			return false
		}
		bin, ok := e.R.(*minicc.Binary)
		if !ok || bin.Op != "+" {
			return false
		}
		lvr, lok := bin.L.(*minicc.VarRef)
		n, nok := bin.R.(*minicc.NumLit)
		return lok && lvr.Local == v && nok && n.Val == 1
	}
	return false
}

// replaceIndexUses substitutes arr[iv] -> *p() throughout a statement tree.
func replaceIndexUses(s minicc.Stmt, arr, iv *minicc.VarDecl, pRef func() *minicc.VarRef) {
	repl := func(e minicc.Expr) minicc.Expr { return replaceIndexExpr(e, arr, iv, pRef) }
	switch s := s.(type) {
	case *minicc.Block:
		for _, st := range s.Stmts {
			replaceIndexUses(st, arr, iv, pRef)
		}
	case *minicc.DeclStmt:
		if s.Init != nil {
			s.Init = repl(s.Init)
		}
	case *minicc.ExprStmt:
		s.X = repl(s.X)
	case *minicc.If:
		s.Cond = repl(s.Cond)
		replaceIndexUses(s.Then, arr, iv, pRef)
		if s.Else != nil {
			replaceIndexUses(s.Else, arr, iv, pRef)
		}
	case *minicc.While:
		s.Cond = repl(s.Cond)
		replaceIndexUses(s.Body, arr, iv, pRef)
	}
}

func replaceIndexExpr(e minicc.Expr, arr, iv *minicc.VarDecl, pRef func() *minicc.VarRef) minicc.Expr {
	repl := func(x minicc.Expr) minicc.Expr { return replaceIndexExpr(x, arr, iv, pRef) }
	switch e := e.(type) {
	case *minicc.Index:
		if idxRef, ok := e.Idx.(*minicc.VarRef); ok && idxRef.Local == iv {
			if base, ok := e.Arr.(*minicc.VarRef); ok && base.Local == arr {
				deref := &minicc.Unary{Op: "*", X: pRef()}
				deref.Typ = arr.Type.Elem
				return deref
			}
		}
		e.Arr = repl(e.Arr)
		e.Idx = repl(e.Idx)
	case *minicc.Unary:
		e.X = repl(e.X)
	case *minicc.Postfix:
		e.X = repl(e.X)
	case *minicc.Binary:
		e.L = repl(e.L)
		e.R = repl(e.R)
	case *minicc.Assign:
		e.L = repl(e.L)
		e.R = repl(e.R)
	case *minicc.Call:
		for i := range e.Args {
			e.Args[i] = repl(e.Args[i])
		}
	case *minicc.Member:
		e.X = repl(e.X)
	case *minicc.Cast:
		e.X = repl(e.X)
	}
	return e
}
