package gen

import (
	"fmt"

	"wytiwyg/internal/asm"
	"wytiwyg/internal/isa"
	"wytiwyg/internal/minicc"
)

// Expression code generation. Values are computed into EAX; ECX is the ALU
// scratch register; EDX holds store addresses/indexes. char values are
// sign-extended to full width when loaded and truncated by 1-byte stores.

// smem is a statically-formed memory operand: either register-relative
// (mem) or a data symbol plus addend (sym != "").
type smem struct {
	mem isa.MemRef
	sym string
	add int32
}

func (f *fnGen) loadSM(dst isa.Reg, m smem, size uint8, signed bool) {
	if m.sym != "" {
		f.b().LoadSym(dst, m.sym, m.add, size, signed)
		return
	}
	f.b().Load(dst, m.mem, size, signed)
}

func (f *fnGen) storeSM(m smem, src isa.Reg, size uint8) {
	if m.sym != "" {
		f.b().StoreSym(m.sym, m.add, src, size)
		return
	}
	f.b().Store(m.mem, src, size)
}

func (f *fnGen) leaSM(dst isa.Reg, m smem) {
	if m.sym != "" {
		f.b().LeaSym(dst, m.sym, m.add)
		return
	}
	f.b().Lea(dst, m.mem)
}

// accessSize returns the load/store width for a scalar type.
func accessSize(t *minicc.Type) (size uint8, signed bool) {
	if t.Kind == minicc.TChar {
		return 1, true
	}
	return 4, false
}

// staticMem tries to form a static memory operand for an lvalue expression
// without emitting any code. It handles stack variables, globals, members
// at constant offsets, and constant array indexes.
func (f *fnGen) staticMem(e minicc.Expr) (smem, bool) {
	switch e := e.(type) {
	case *minicc.VarRef:
		switch {
		case e.Local != nil:
			l := f.locs[e.Local]
			if l.inReg {
				return smem{}, false
			}
			return smem{mem: f.frameMem(e.Local)}, true
		case e.Global != nil:
			return smem{sym: e.Global.Name}, true
		}
	case *minicc.Member:
		if e.Arrow {
			return smem{}, false
		}
		base, ok := f.staticMem(e.X)
		if !ok {
			return smem{}, false
		}
		return addSM(base, int32(e.Field.Offset)), true
	case *minicc.Index:
		at := e.Arr.Type()
		if at.Kind != minicc.TArray {
			return smem{}, false // pointer indexing needs a load
		}
		idx, ok := e.Idx.(*minicc.NumLit)
		if !ok {
			return smem{}, false
		}
		base, ok := f.staticMem(e.Arr)
		if !ok {
			return smem{}, false
		}
		return addSM(base, idx.Val*int32(at.Elem.Size())), true
	}
	return smem{}, false
}

func addSM(m smem, delta int32) smem {
	if m.sym != "" {
		m.add += delta
	} else {
		m.mem.Disp += delta
	}
	return m
}

// isLeaf reports whether an expression can be materialized into an
// arbitrary register without disturbing EAX (used for the leaf-operand
// optimization of the O3 profiles).
func (f *fnGen) isLeaf(e minicc.Expr) bool {
	if !f.prof.LeafOps {
		return false
	}
	switch e := e.(type) {
	case *minicc.NumLit, *minicc.SizeofType:
		return true
	case *minicc.VarRef:
		if e.Local != nil {
			if e.Local.Type.IsScalar() {
				return true
			}
			return e.Local.Type.Kind == minicc.TArray // decays to lea
		}
		if e.Global != nil {
			return e.Global.Type.IsScalar() || e.Global.Type.Kind == minicc.TArray
		}
		return false
	}
	return false
}

// loadLeaf materializes a leaf into dst (any register, EAX included).
func (f *fnGen) loadLeaf(e minicc.Expr, dst isa.Reg) {
	b := f.b()
	switch e := e.(type) {
	case *minicc.NumLit:
		b.MovI(dst, e.Val)
	case *minicc.SizeofType:
		b.MovI(dst, int32(e.Of.Size()))
	case *minicc.VarRef:
		switch {
		case e.Local != nil:
			l := f.locs[e.Local]
			if l.inReg {
				b.Mov(dst, l.reg)
				return
			}
			if e.Local.Type.Kind == minicc.TArray {
				b.Lea(dst, f.frameMem(e.Local))
				return
			}
			size, signed := accessSize(e.Local.Type)
			b.Load(dst, f.frameMem(e.Local), size, signed)
		case e.Global != nil:
			if e.Global.Type.Kind == minicc.TArray {
				b.LeaSym(dst, e.Global.Name, 0)
				return
			}
			size, signed := accessSize(e.Global.Type)
			b.LoadSym(dst, e.Global.Name, 0, size, signed)
		default:
			panic("gen: loadLeaf of non-leaf VarRef")
		}
	default:
		panic(fmt.Sprintf("gen: loadLeaf of %T", e))
	}
}

// eval computes e into EAX.
func (f *fnGen) eval(e minicc.Expr) error {
	b := f.b()
	switch e := e.(type) {
	case *minicc.NumLit:
		b.MovI(isa.EAX, e.Val)
	case *minicc.StrLit:
		addr := b.Asciz("", e.Val)
		b.MovI(isa.EAX, int32(addr))
	case *minicc.SizeofType:
		b.MovI(isa.EAX, int32(e.Of.Size()))
	case *minicc.VarRef:
		switch {
		case e.Local != nil || e.Global != nil:
			if e.Type().Kind == minicc.TStruct {
				return fmt.Errorf("gen: struct value in expression context")
			}
			f.loadLeaf(e, isa.EAX)
		case e.Func != nil:
			f.movFuncAddr(isa.EAX, e.Func.Name)
		default:
			return fmt.Errorf("gen: extern %q used as value", e.Name)
		}
	case *minicc.Unary:
		return f.evalUnary(e)
	case *minicc.Postfix:
		return f.incDec(e.X, e.Op == "++", true)
	case *minicc.Binary:
		return f.evalBinary(e)
	case *minicc.Assign:
		return f.evalAssign(e)
	case *minicc.Call:
		return f.evalCall(e)
	case *minicc.Index:
		return f.evalIndexLoad(e)
	case *minicc.Member:
		return f.evalMemberLoad(e)
	case *minicc.Cast:
		if err := f.eval(e.X); err != nil {
			return err
		}
		if e.To.Kind == minicc.TChar && e.X.Type().Decay().Kind != minicc.TChar {
			// Truncate then sign-extend.
			b.BinI(isa.SHLI, isa.EAX, 24)
			b.BinI(isa.SARI, isa.EAX, 24)
		}
	default:
		return fmt.Errorf("gen: cannot evaluate %T", e)
	}
	return nil
}

func (f *fnGen) movFuncAddr(dst isa.Reg, fn string) {
	f.b().MovLabelAddr(dst, fn)
}

func (f *fnGen) evalUnary(e *minicc.Unary) error {
	b := f.b()
	switch e.Op {
	case "-":
		if err := f.eval(e.X); err != nil {
			return err
		}
		b.Neg(isa.EAX)
	case "~":
		if err := f.eval(e.X); err != nil {
			return err
		}
		b.Not(isa.EAX)
	case "!":
		if err := f.eval(e.X); err != nil {
			return err
		}
		b.CmpI(isa.EAX, 0)
		b.Set(isa.CondEQ, isa.EAX)
	case "*":
		pt := e.X.Type().Decay()
		if err := f.eval(e.X); err != nil {
			return err
		}
		size, signed := accessSize(pt.Elem)
		if pt.Elem.Kind == minicc.TStruct {
			return nil // struct lvalue context handles the address itself
		}
		b.Load(isa.EAX, asm.Mem(isa.EAX, 0), size, signed)
	case "&":
		if vr, ok := e.X.(*minicc.VarRef); ok && vr.Func != nil {
			f.movFuncAddr(isa.EAX, vr.Func.Name)
			return nil
		}
		return f.evalAddr(e.X)
	case "++", "--":
		return f.incDec(e.X, e.Op == "++", false)
	default:
		return fmt.Errorf("gen: unary %q", e.Op)
	}
	return nil
}

// evalAddr computes the address of an lvalue into EAX.
func (f *fnGen) evalAddr(e minicc.Expr) error {
	b := f.b()
	if m, ok := f.staticMem(e); ok {
		f.leaSM(isa.EAX, m)
		return nil
	}
	switch e := e.(type) {
	case *minicc.Unary:
		if e.Op == "*" {
			return f.eval(e.X)
		}
	case *minicc.Index:
		return f.evalIndexAddr(e)
	case *minicc.Member:
		if e.Arrow {
			if err := f.eval(e.X); err != nil {
				return err
			}
		} else {
			if err := f.evalAddr(e.X); err != nil {
				return err
			}
		}
		if e.Field.Offset != 0 {
			b.BinI(isa.ADDI, isa.EAX, int32(e.Field.Offset))
		}
		return nil
	case *minicc.VarRef:
		// Register variables have no address (the checker prevents this).
		return fmt.Errorf("gen: address of register variable %q", e.Name)
	}
	return fmt.Errorf("gen: cannot take address of %T", e)
}

// evalIndexAddr computes &arr[idx] into EAX, using scaled-index addressing
// when the base is a stack/global array and the element size allows it.
func (f *fnGen) evalIndexAddr(e *minicc.Index) error {
	b := f.b()
	at := e.Arr.Type()
	elem := e.Arr.Type().Decay().Elem
	esz := int32(elem.Size())

	if at.Kind == minicc.TArray {
		if base, ok := f.staticMem(e.Arr); ok {
			// Index into EAX, scaled addressing off the frame or global.
			if err := f.eval(e.Idx); err != nil {
				return err
			}
			switch esz {
			case 1, 2, 4, 8:
				if base.sym != "" {
					// lea eax, [sym + eax*esz]: form via scaled mem with
					// absolute displacement fixup.
					i := b.Emit(isa.Instr{Op: isa.LEA, Dst: isa.EAX,
						Mem: isa.MemRef{Base: isa.NoReg, Index: isa.EAX, Scale: uint8(esz)}})
					b.FixDataDisp(i, base.sym, base.add)
					return nil
				}
				m := base.mem
				b.Lea(isa.EAX, asm.MemIdx(m.Base, isa.EAX, uint8(esz), m.Disp))
				return nil
			default:
				b.BinI(isa.MULI, isa.EAX, esz)
				if base.sym != "" {
					i := b.Emit(isa.Instr{Op: isa.LEA, Dst: isa.EAX,
						Mem: isa.MemRef{Base: isa.NoReg, Index: isa.EAX, Scale: 1}})
					b.FixDataDisp(i, base.sym, base.add)
					return nil
				}
				m := base.mem
				b.Lea(isa.EAX, asm.MemIdx(m.Base, isa.EAX, 1, m.Disp))
				return nil
			}
		}
	}
	// General path: pointer arithmetic base + idx*esz.
	if f.isLeaf(e.Idx) {
		if err := f.eval(e.Arr); err != nil { // array decays to address
			return err
		}
		f.loadLeaf(e.Idx, isa.ECX)
		switch esz {
		case 1, 2, 4, 8:
			b.Lea(isa.EAX, asm.MemIdx(isa.EAX, isa.ECX, uint8(esz), 0))
		default:
			b.BinI(isa.MULI, isa.ECX, esz)
			b.Bin(isa.ADD, isa.EAX, isa.ECX)
		}
		return nil
	}
	if err := f.eval(e.Idx); err != nil {
		return err
	}
	if esz != 1 {
		b.BinI(isa.MULI, isa.EAX, esz)
	}
	f.push(isa.EAX)
	if err := f.eval(e.Arr); err != nil {
		return err
	}
	f.pop(isa.ECX)
	b.Bin(isa.ADD, isa.EAX, isa.ECX)
	return nil
}

func (f *fnGen) evalIndexLoad(e *minicc.Index) error {
	b := f.b()
	elem := e.Arr.Type().Decay().Elem
	if elem.Kind == minicc.TStruct || elem.Kind == minicc.TArray {
		// Aggregate element: its "value" is its address (array decay /
		// struct lvalue used by member access or struct assign).
		return f.evalIndexAddr(e)
	}
	size, signed := accessSize(elem)
	if m, ok := f.staticMem(e); ok {
		f.loadSM(isa.EAX, m, size, signed)
		return nil
	}
	// Scaled load off a static array base with a variable index.
	at := e.Arr.Type()
	esz := int32(elem.Size())
	if at.Kind == minicc.TArray && (esz == 1 || esz == 2 || esz == 4 || esz == 8) {
		if base, ok := f.staticMem(e.Arr); ok {
			if err := f.eval(e.Idx); err != nil {
				return err
			}
			if base.sym != "" {
				i := b.Emit(isa.Instr{Op: isa.LOAD, Dst: isa.EAX, Size: size, Signed: signed,
					Mem: isa.MemRef{Base: isa.NoReg, Index: isa.EAX, Scale: uint8(esz)}})
				b.FixDataDisp(i, base.sym, base.add)
				return nil
			}
			m := base.mem
			b.Load(isa.EAX, asm.MemIdx(m.Base, isa.EAX, uint8(esz), m.Disp), size, signed)
			return nil
		}
	}
	if err := f.evalIndexAddr(e); err != nil {
		return err
	}
	b.Load(isa.EAX, asm.Mem(isa.EAX, 0), size, signed)
	return nil
}

func (f *fnGen) evalMemberLoad(e *minicc.Member) error {
	b := f.b()
	if e.Field.Type.Kind == minicc.TStruct || e.Field.Type.Kind == minicc.TArray {
		return f.evalAddr(e)
	}
	size, signed := accessSize(e.Field.Type)
	if m, ok := f.staticMem(e); ok {
		f.loadSM(isa.EAX, m, size, signed)
		return nil
	}
	if err := f.evalAddr(e); err != nil {
		return err
	}
	b.Load(isa.EAX, asm.Mem(isa.EAX, 0), size, signed)
	return nil
}

// condFor maps a comparison operator to a machine condition.
func condFor(op string, unsigned bool) isa.Cond {
	if unsigned {
		switch op {
		case "==":
			return isa.CondEQ
		case "!=":
			return isa.CondNE
		case "<":
			return isa.CondB
		case "<=":
			return isa.CondBE
		case ">":
			return isa.CondA
		case ">=":
			return isa.CondAE
		}
	}
	switch op {
	case "==":
		return isa.CondEQ
	case "!=":
		return isa.CondNE
	case "<":
		return isa.CondLT
	case "<=":
		return isa.CondLE
	case ">":
		return isa.CondGT
	case ">=":
		return isa.CondGE
	}
	panic("gen: not a comparison: " + op)
}

func isCmpOp(op string) bool {
	switch op {
	case "==", "!=", "<", "<=", ">", ">=":
		return true
	}
	return false
}

var binOpMap = map[string]isa.Op{
	"+": isa.ADD, "-": isa.SUB, "*": isa.MUL, "/": isa.DIV, "%": isa.MOD,
	"&": isa.AND, "|": isa.OR, "^": isa.XOR, "<<": isa.SHL, ">>": isa.SAR,
}

func (f *fnGen) evalBinary(e *minicc.Binary) error {
	b := f.b()
	switch e.Op {
	case "&&", "||":
		// Short-circuit to a 0/1 value.
		lFalse := f.g.newLabel("sc_false")
		lTrue := f.g.newLabel("sc_true")
		lEnd := f.g.newLabel("sc_end")
		if err := f.condJump(e, lTrue, lFalse); err != nil {
			return err
		}
		b.Label(lTrue)
		b.MovI(isa.EAX, 1)
		b.Jmp(lEnd)
		b.Label(lFalse)
		b.MovI(isa.EAX, 0)
		b.Label(lEnd)
		return nil
	}
	if isCmpOp(e.Op) {
		unsigned := e.L.Type().Decay().Kind == minicc.TPtr || e.R.Type().Decay().Kind == minicc.TPtr
		if err := f.evalCmpOperands(e); err != nil {
			return err
		}
		b.Set(condFor(e.Op, unsigned), isa.EAX)
		return nil
	}

	lt, rt := e.L.Type().Decay(), e.R.Type().Decay()
	// Pointer arithmetic: normalize to ptr OP int with scaling, or
	// ptr - ptr with a divide.
	if e.Op == "+" && lt.IsInteger() && rt.Kind == minicc.TPtr {
		e = &minicc.Binary{Op: "+", L: e.R, R: e.L}
		e.Typ = rt
		lt, rt = rt, lt
	}
	scale := int32(1)
	if (e.Op == "+" || e.Op == "-") && lt.Kind == minicc.TPtr && rt.IsInteger() {
		scale = int32(lt.Elem.Size())
	}
	if e.Op == "-" && lt.Kind == minicc.TPtr && rt.Kind == minicc.TPtr {
		// ptr - ptr: subtract then divide by element size.
		if err := f.evalBinGeneric(isa.SUB, e.L, e.R, 1); err != nil {
			return err
		}
		esz := int32(lt.Elem.Size())
		if esz > 1 {
			b.BinI(isa.DIVI, isa.EAX, esz)
		}
		return nil
	}
	op, ok := binOpMap[e.Op]
	if !ok {
		return fmt.Errorf("gen: binary %q", e.Op)
	}
	return f.evalBinGeneric(op, e.L, e.R, scale)
}

// evalBinGeneric computes EAX = L op (R * scale).
func (f *fnGen) evalBinGeneric(op isa.Op, L, R minicc.Expr, scale int32) error {
	b := f.b()
	if n, ok := R.(*minicc.NumLit); ok && f.prof.LeafOps {
		if err := f.eval(L); err != nil {
			return err
		}
		b.BinI(op.ImmForm(), isa.EAX, n.Val*scale)
		return nil
	}
	if f.isLeaf(R) {
		if err := f.eval(L); err != nil {
			return err
		}
		f.loadLeaf(R, isa.ECX)
		if scale != 1 {
			b.BinI(isa.MULI, isa.ECX, scale)
		}
		b.Bin(op, isa.EAX, isa.ECX)
		return nil
	}
	if err := f.eval(R); err != nil {
		return err
	}
	if scale != 1 {
		b.BinI(isa.MULI, isa.EAX, scale)
	}
	f.push(isa.EAX)
	if err := f.eval(L); err != nil {
		return err
	}
	f.pop(isa.ECX)
	b.Bin(op, isa.EAX, isa.ECX)
	return nil
}

// evalCmpOperands leaves flags set for L cmp R.
func (f *fnGen) evalCmpOperands(e *minicc.Binary) error {
	b := f.b()
	if n, ok := e.R.(*minicc.NumLit); ok && f.prof.LeafOps {
		if err := f.eval(e.L); err != nil {
			return err
		}
		b.CmpI(isa.EAX, n.Val)
		return nil
	}
	if f.isLeaf(e.R) {
		if err := f.eval(e.L); err != nil {
			return err
		}
		f.loadLeaf(e.R, isa.ECX)
		b.Cmp(isa.EAX, isa.ECX)
		return nil
	}
	if err := f.eval(e.R); err != nil {
		return err
	}
	f.push(isa.EAX)
	if err := f.eval(e.L); err != nil {
		return err
	}
	f.pop(isa.ECX)
	b.Cmp(isa.EAX, isa.ECX)
	return nil
}

// condJump evaluates e as a branch: control flows to lTrue if e is truthy,
// lFalse otherwise. Both labels must be bound by the caller immediately
// after (one of them may directly follow the emitted code).
func (f *fnGen) condJump(e minicc.Expr, lTrue, lFalse string) error {
	b := f.b()
	switch e := e.(type) {
	case *minicc.Binary:
		switch e.Op {
		case "&&":
			lMid := f.g.newLabel("and")
			if err := f.condJump(e.L, lMid, lFalse); err != nil {
				return err
			}
			b.Label(lMid)
			return f.condJump(e.R, lTrue, lFalse)
		case "||":
			lMid := f.g.newLabel("or")
			if err := f.condJump(e.L, lTrue, lMid); err != nil {
				return err
			}
			b.Label(lMid)
			return f.condJump(e.R, lTrue, lFalse)
		}
		if isCmpOp(e.Op) {
			unsigned := e.L.Type().Decay().Kind == minicc.TPtr || e.R.Type().Decay().Kind == minicc.TPtr
			if err := f.evalCmpOperands(e); err != nil {
				return err
			}
			b.Jcc(condFor(e.Op, unsigned), lTrue)
			b.Jmp(lFalse)
			return nil
		}
	case *minicc.Unary:
		if e.Op == "!" {
			return f.condJump(e.X, lFalse, lTrue)
		}
	}
	if err := f.eval(e); err != nil {
		return err
	}
	b.CmpI(isa.EAX, 0)
	b.Jcc(isa.CondNE, lTrue)
	b.Jmp(lFalse)
	return nil
}

// incDec implements ++/-- (pre and post). The result value is left in EAX:
// the old value when wantOld, the new value otherwise.
func (f *fnGen) incDec(lv minicc.Expr, inc bool, wantOld bool) error {
	b := f.b()
	t := lv.Type().Decay()
	delta := int32(1)
	if t.Kind == minicc.TPtr {
		delta = int32(t.Elem.Size())
	}
	if !inc {
		delta = -delta
	}
	// Register variable.
	if vr, ok := lv.(*minicc.VarRef); ok && vr.Local != nil {
		if l := f.locs[vr.Local]; l.inReg {
			if wantOld {
				b.Mov(isa.EAX, l.reg)
				b.BinI(isa.ADDI, l.reg, delta)
			} else {
				b.BinI(isa.ADDI, l.reg, delta)
				b.Mov(isa.EAX, l.reg)
			}
			return nil
		}
	}
	size, _ := accessSize(t)
	if m, ok := f.staticMem(lv); ok {
		sz, sg := accessSize(t)
		f.loadSM(isa.EAX, m, sz, sg)
		if wantOld {
			b.Mov(isa.ECX, isa.EAX)
			b.BinI(isa.ADDI, isa.ECX, delta)
			f.storeSM(m, isa.ECX, size)
		} else {
			b.BinI(isa.ADDI, isa.EAX, delta)
			f.storeSM(m, isa.EAX, size)
		}
		return nil
	}
	// Dynamic address.
	if err := f.evalAddr(lv); err != nil {
		return err
	}
	b.Mov(isa.EDX, isa.EAX)
	sz, sg := accessSize(t)
	b.Load(isa.EAX, asm.Mem(isa.EDX, 0), sz, sg)
	if wantOld {
		b.Mov(isa.ECX, isa.EAX)
		b.BinI(isa.ADDI, isa.ECX, delta)
		b.Store(asm.Mem(isa.EDX, 0), isa.ECX, size)
	} else {
		b.BinI(isa.ADDI, isa.EAX, delta)
		b.Store(asm.Mem(isa.EDX, 0), isa.EAX, size)
	}
	return nil
}

func (f *fnGen) evalAssign(e *minicc.Assign) error {
	b := f.b()
	lt := e.L.Type()

	// Struct assignment: unrolled word copy.
	if lt.Kind == minicc.TStruct {
		return f.structCopy(e)
	}

	size, _ := accessSize(lt)

	// Sub-register char-to-char copy (Clang profile): leaves the upper
	// bits of the transfer register stale — the paper's false-derive
	// pattern, exercised without changing semantics because only the low
	// byte is stored.
	if f.prof.SubregChar && size == 1 {
		if lm, ok := f.staticMem(e.L); ok {
			if rm, rok := f.charSource(e.R); rok {
				b.LoadLo8(isa.EAX, rm)
				f.storeSM(lm, isa.EAX, 1)
				return nil
			}
		}
	}

	// Register destination.
	if vr, ok := e.L.(*minicc.VarRef); ok && vr.Local != nil {
		if l := f.locs[vr.Local]; l.inReg {
			if err := f.eval(e.R); err != nil {
				return err
			}
			b.Mov(l.reg, isa.EAX)
			return nil
		}
	}
	// Static destination.
	if m, ok := f.staticMem(e.L); ok {
		if err := f.eval(e.R); err != nil {
			return err
		}
		f.storeSM(m, isa.EAX, size)
		return nil
	}
	// Indexed destination with a static array base: keep the scaled-index
	// form (store4 [ebp+ecx*4-44], eax — the paper's Figure 2 pattern).
	if ix, ok := e.L.(*minicc.Index); ok && ix.Arr.Type().Kind == minicc.TArray {
		if base, bok := f.staticMem(ix.Arr); bok {
			esz := int32(ix.Arr.Type().Elem.Size())
			if esz == 1 || esz == 2 || esz == 4 || esz == 8 {
				if f.isLeaf(ix.Idx) {
					if err := f.eval(e.R); err != nil {
						return err
					}
					f.loadLeaf(ix.Idx, isa.EDX)
				} else {
					if err := f.eval(ix.Idx); err != nil {
						return err
					}
					f.push(isa.EAX)
					if err := f.eval(e.R); err != nil {
						return err
					}
					f.pop(isa.EDX)
				}
				if base.sym != "" {
					i := b.Emit(isa.Instr{Op: isa.STORE, Src: isa.EAX, Size: size,
						Mem: isa.MemRef{Base: isa.NoReg, Index: isa.EDX, Scale: uint8(esz)}})
					b.FixDataDisp(i, base.sym, base.add)
					return nil
				}
				m := base.mem
				b.Store(asm.MemIdx(m.Base, isa.EDX, uint8(esz), m.Disp), isa.EAX, size)
				return nil
			}
		}
	}
	// General: address then value.
	if err := f.evalAddr(e.L); err != nil {
		return err
	}
	f.push(isa.EAX)
	if err := f.eval(e.R); err != nil {
		return err
	}
	f.pop(isa.EDX)
	b.Store(asm.Mem(isa.EDX, 0), isa.EAX, size)
	return nil
}

// charSource forms a static memory operand for a char rvalue, if possible.
func (f *fnGen) charSource(e minicc.Expr) (isa.MemRef, bool) {
	if e.Type() == nil || e.Type().Kind != minicc.TChar {
		return isa.MemRef{}, false
	}
	m, ok := f.staticMem(e)
	if !ok || m.sym != "" {
		return isa.MemRef{}, false
	}
	return m.mem, true
}

// structCopy copies R into L word by word.
func (f *fnGen) structCopy(e *minicc.Assign) error {
	b := f.b()
	sz := int32(e.L.Type().Size())
	// Source address.
	if err := f.addrOfAggregate(e.R); err != nil {
		return err
	}
	f.push(isa.EAX)
	if err := f.addrOfAggregate(e.L); err != nil {
		return err
	}
	f.pop(isa.ECX) // ECX = src, EAX = dst
	for off := int32(0); off < sz; off += 4 {
		step := uint8(4)
		if sz-off < 4 {
			step = 1
		}
		b.Load(isa.EDX, asm.Mem(isa.ECX, off), step, false)
		b.Store(asm.Mem(isa.EAX, off), isa.EDX, step)
		if step == 1 {
			// Finish byte by byte.
			for bo := off + 1; bo < sz; bo++ {
				b.Load(isa.EDX, asm.Mem(isa.ECX, bo), 1, false)
				b.Store(asm.Mem(isa.EAX, bo), isa.EDX, 1)
			}
			break
		}
	}
	return nil
}

// addrOfAggregate computes the address of a struct-typed expression.
func (f *fnGen) addrOfAggregate(e minicc.Expr) error {
	switch e := e.(type) {
	case *minicc.Unary:
		if e.Op == "*" {
			return f.eval(e.X)
		}
	case *minicc.Index:
		return f.evalIndexAddr(e)
	}
	return f.evalAddr(e)
}

func (f *fnGen) evalCall(e *minicc.Call) error {
	b := f.b()
	// Push arguments right to left (outgoing argument slots: not recorded
	// as stack objects).
	for i := len(e.Args) - 1; i >= 0; i-- {
		a := e.Args[i]
		if n, ok := a.(*minicc.NumLit); ok {
			f.inArgPush = true
			f.pushI(n.Val)
			f.inArgPush = false
			continue
		}
		if s, ok := a.(*minicc.StrLit); ok {
			addr := b.Asciz("", s.Val)
			f.inArgPush = true
			f.pushI(int32(addr))
			f.inArgPush = false
			continue
		}
		if err := f.eval(a); err != nil {
			return err
		}
		f.inArgPush = true
		f.push(isa.EAX)
		f.inArgPush = false
	}
	vr, _ := e.Fn.(*minicc.VarRef)
	switch {
	case vr != nil && vr.Func != nil:
		b.Call(vr.Func.Name)
	case vr != nil && vr.Ext != nil:
		b.CallExt(vr.Ext.Name)
	default:
		if err := f.eval(e.Fn); err != nil {
			return err
		}
		b.CallR(isa.EAX)
	}
	if n := int32(4 * len(e.Args)); n > 0 {
		b.BinI(isa.ADDI, isa.ESP, n)
		f.pushDepth -= n
	}
	return nil
}
