package gen_test

import (
	"bytes"
	"testing"

	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
)

// Escape sequences, address-of on every addressable shape, unary-operator
// chains and sizeof variants: each program's exit code (and output, where
// given) checks the construct end to end.
func TestLanguageConstructsMore(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		want    int32
		wantOut string
	}{
		{"string-escapes", `
extern int printf(char *fmt, ...);
extern int strlen(char *s);
int main() {
	char *s = "a\tb\n";
	printf("%s", s);
	printf("q\"q\\\n");
	return strlen(s);       /* 4 */
}`, 4, "a\tb\nq\"q\\\n"},
		{"char-escapes", `
int main() {
	char nl = '\n';
	char tab = '\t';
	char nul = '\0';
	char bs = '\\';
	char q = '\'';
	return nl + tab + nul + bs + q;   /* 10+9+0+92+39 = 150 */
}`, 150, ""},
		{"address-of-field", `
struct pt { int x; int y; };
int bump(int *p) { *p += 5; return *p; }
int main() {
	struct pt a;
	a.x = 1; a.y = 2;
	bump(&a.y);
	return a.y;            /* 7 */
}`, 7, ""},
		{"address-of-element", `
int bump(int *p) { *p *= 3; return *p; }
int main() {
	int v[4];
	int i;
	for (i = 0; i < 4; i++) v[i] = i + 1;
	bump(&v[2]);
	return v[2];           /* 9 */
}`, 9, ""},
		{"address-of-scalar-chain", `
int main() {
	int x = 11;
	int *p = &x;
	int **pp = &p;
	**pp += 1;
	return *p;             /* 12 */
}`, 12, ""},
		{"unary-chains", `
int main() {
	int x = 5;
	return - -x + !!x + ~~x;   /* 5 + 1 + 5 = 11 */
}`, 11, ""},
		{"sizeof-variants", `
struct s { int a; char b; int c; };
int main() {
	int v[6];
	char c;
	return sizeof(int) + sizeof(v) + sizeof(struct s) + sizeof(c);
}`, 4 + 24 + 12 + 1, ""},
		{"while-and-break-continue", `
int main() {
	int i = 0, s = 0;
	while (1) {
		i++;
		if (i > 10) break;
		if (i % 2 == 0) continue;
		s += i;            /* 1+3+5+7+9 = 25 */
	}
	return s;
}`, 25, ""},
		{"switch-fallthrough", `
int classify(int x) {
	int r = 0;
	switch (x) {
	case 1:
		r += 1;            /* falls through */
	case 2:
		r += 2;
		break;
	case 3:
		r += 100;
		break;
	default:
		r = 99;
	}
	return r;
}
int main() { return classify(1)*100 + classify(2)*10 + classify(7); }`, 3*100 + 2*10 + 99, ""},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			for _, prof := range []gen.Profile{gen.GCC12O3, gen.GCC12O0, gen.GCC44O3} {
				img, err := gen.Build(c.src, prof, c.name)
				if err != nil {
					t.Fatalf("%s: %v", prof.Name, err)
				}
				var out bytes.Buffer
				res, err := machine.Execute(img, machine.Input{}, &out)
				if err != nil {
					t.Fatalf("%s: %v", prof.Name, err)
				}
				if res.ExitCode != c.want {
					t.Errorf("%s: exit = %d, want %d", prof.Name, res.ExitCode, c.want)
				}
				if c.wantOut != "" && out.String() != c.wantOut {
					t.Errorf("%s: output = %q, want %q", prof.Name, out.String(), c.wantOut)
				}
			}
		})
	}
}
