package gen

import (
	"bytes"
	"strings"
	"testing"

	"wytiwyg/internal/isa"
	"wytiwyg/internal/layout"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc"
)

// runProfile compiles src with a profile and executes it.
func runProfile(t *testing.T, src string, prof Profile, input machine.Input) (int32, string) {
	t.Helper()
	img, err := Build(src, prof, "t-"+prof.Name)
	if err != nil {
		t.Fatalf("%s: build: %v", prof.Name, err)
	}
	var out bytes.Buffer
	res, err := machine.Execute(img, input, &out)
	if err != nil {
		t.Fatalf("%s: execute: %v", prof.Name, err)
	}
	return res.ExitCode, out.String()
}

// checkAll runs src under every profile and requires identical behaviour.
func checkAll(t *testing.T, src string, wantExit int32, wantOut string, input machine.Input) {
	t.Helper()
	for _, prof := range Profiles {
		exit, out := runProfile(t, src, prof, input)
		if exit != wantExit {
			t.Errorf("%s: exit = %d, want %d", prof.Name, exit, wantExit)
		}
		if out != wantOut {
			t.Errorf("%s: output = %q, want %q", prof.Name, out, wantOut)
		}
	}
}

func TestReturnConstant(t *testing.T) {
	checkAll(t, `int main() { return 42; }`, 42, "", machine.Input{})
}

func TestArithmetic(t *testing.T) {
	checkAll(t, `
int main() {
	int a = 10, b = 3;
	return a*b + a/b - a%b + (a<<2) - (a>>1) + (a&b) + (a|b) + (a^b) - (-b) - ~b + !b;
}`, 30+3-1+40-5+2+11+9+3+4+0, "", machine.Input{})
}

func TestControlFlow(t *testing.T) {
	checkAll(t, `
int main() {
	int i, s = 0;
	for (i = 0; i < 10; i++) {
		if (i % 2 == 0) continue;
		s += i;
		if (s > 20) break;
	}
	while (i < 100) { i += 7; }
	return s * 1000 + i;
}`, 25*1000+100, "", machine.Input{})
}

func TestFunctionsAndRecursion(t *testing.T) {
	checkAll(t, `
int fib(int n) {
	if (n < 2) return n;
	return fib(n-1) + fib(n-2);
}
int main() { return fib(12); }`, 144, "", machine.Input{})
}

func TestArraysAndPointers(t *testing.T) {
	checkAll(t, `
int main() {
	int a[8];
	int *p, *q;
	int i, s;
	for (i = 0; i < 8; i++) a[i] = i * i;
	p = &a[1];
	q = p + 5;     /* &a[6] */
	s = q - p;     /* 5 */
	return *q + s + p[2];  /* 36 + 5 + 9 */
}`, 50, "", machine.Input{})
}

func TestStructsAndMembers(t *testing.T) {
	// A close transcription of the paper's Figure 2.
	checkAll(t, `
struct p { int x; int y; };
int f3(int n) { return n / 12; }             /* returns 2 for sizeof(b)=24 */
struct p *f2(struct p *a, struct p *b) { return a; }
int f1() {
	struct p *ptr;
	struct p a;
	struct p b[3];
	a.x = 3;
	a.y = 4;
	ptr = f2(&a, b);
	b[f3(sizeof(b))] = a;
	ptr->y = b[1].x;
	return ptr->y * 100 + b[2].x * 10 + b[2].y;
}
int main() { return f1(); }`, 0*100+3*10+4, "", machine.Input{})
}

func TestGlobals(t *testing.T) {
	checkAll(t, `
int g = 7;
int tbl[5];
char name[4];
char *msg = "ok";
extern int strlen(char *s);
int main() {
	int i;
	for (i = 0; i < 5; i++) tbl[i] = g * i;
	name[0] = 'a';
	name[1] = 0;
	return tbl[4] + strlen(msg) + name[0];
}`, 28+2+97, "", machine.Input{})
}

func TestCharsAndCasts(t *testing.T) {
	checkAll(t, `
int main() {
	char c = 'A';
	char d;
	int big = 300;
	d = c;                 /* char-to-char copy (subreg path on clang) */
	c = (char)big;         /* 300 -> 44 */
	return d + c;          /* 65 + 44 */
}`, 109, "", machine.Input{})
}

func TestShortCircuit(t *testing.T) {
	checkAll(t, `
int g = 0;
int bump() { g = g + 1; return 1; }
int main() {
	int a = 0;
	if (a && bump()) { g += 100; }
	if (a || bump()) { g += 10; }
	if (bump() && bump()) { g += 1000; }
	return g + (a && 1) + (1 || bump());
}`, 1+10+2+1000+0+1, "", machine.Input{})
}

func TestSwitchDense(t *testing.T) {
	src := `
extern int input_int(int i);
int classify(int v) {
	switch (v) {
	case 0: return 10;
	case 1: return 11;
	case 2: return 12;
	case 3: return 13;
	case 4: return 14;
	default: return 99;
	}
}
int main() { return classify(input_int(0)) * 100 + classify(input_int(1)); }`
	checkAll(t, src, 1299, "", machine.Input{Ints: []int32{2, 77}})
	checkAll(t, src, 1014, "", machine.Input{Ints: []int32{0, 4}})
}

func TestSwitchSparseAndFallthrough(t *testing.T) {
	checkAll(t, `
int pick(int v) {
	int r = 0;
	switch (v) {
	case 1: r += 1;
	case 100: r += 2; break;
	case 1000: r += 4; break;
	}
	return r;
}
int main() { return pick(1)*100 + pick(100)*10 + pick(1000) + pick(7); }`, 3*100+2*10+4, "", machine.Input{})
}

func TestTailCallPattern(t *testing.T) {
	// even/odd mutual recursion via tail calls; deep enough that the O3
	// profiles' tail-call lowering matters for stack usage but shallow
	// enough for O0's genuine recursion.
	checkAll(t, `
int isOdd(int n);
int isEven(int n) {
	if (n == 0) return 1;
	return isOdd(n - 1);
}
int isOdd(int n) {
	if (n == 0) return 0;
	return isEven(n - 1);
}
int main() { return isEven(200) * 10 + isOdd(101); }`, 11, "", machine.Input{})
}

func TestFnPtr(t *testing.T) {
	checkAll(t, `
int twice(int x) { return 2 * x; }
int thrice(int x) { return 3 * x; }
int apply(fnptr f, int v) { return f(v); }
int main() {
	fnptr g = &twice;
	return apply(g, 10) + apply(&thrice, 10);
}`, 50, "", machine.Input{})
}

func TestPrintfOutput(t *testing.T) {
	checkAll(t, `
extern int printf(char *fmt, ...);
int main() {
	int i;
	for (i = 0; i < 3; i++) printf("i=%d\n", i);
	printf("%s %c %u\n", "end", '!', 7);
	return 0;
}`, 0, "i=0\ni=1\ni=2\nend ! 7\n", machine.Input{})
}

func TestNestedArraysFigure3(t *testing.T) {
	// The Figure 3 pattern: iterating a 2-D array; the gcc12/clang16
	// profiles strength-reduce the outer loop to pointer iteration with an
	// end pointer one past the array.
	checkAll(t, `
int main() {
	int arr[4][4];
	int i, j, s = 0;
	for (i = 0; i < 4; i++) {
		arr[i][0] = i;
		arr[i][1] = i + 1;
		arr[i][2] = i + 2;
		arr[i][3] = i + 3;
	}
	for (i = 0; i < 4; i++) {
		for (j = 0; j < 4; j = j + 1) s += arr[i][j];
	}
	return s;
}`, 48, "", machine.Input{})
}

func TestPtrLoopRewriteFires(t *testing.T) {
	// The transformed loop must produce an end-pointer compare: since the
	// rewrite introduces `end$i`, inspect the function's locals.
	src := `
int main() {
	int a[16];
	int i, s = 0;
	for (i = 0; i < 16; i++) { a[i] = 7; }
	for (i = 0; i < 16; i++) { s += a[i]; }
	return s;
}`
	prog, err := minicc.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	fn := prog.FindFunc("main")
	rewritePtrLoops(fn)
	var found int
	for _, v := range fn.Locals {
		if strings.HasPrefix(v.Name, "end$") {
			found++
		}
	}
	if found != 2 {
		t.Errorf("pointer-loop rewrite fired %d times, want 2", found)
	}
}

func TestPtrLoopNotRewrittenWhenIndexEscapes(t *testing.T) {
	src := `
extern int printf(char *fmt, ...);
int main() {
	int a[8];
	int i;
	for (i = 0; i < 8; i++) { a[i] = i; printf("%d", i); }
	return a[3];
}`
	prog, err := minicc.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	fn := prog.FindFunc("main")
	rewritePtrLoops(fn)
	for _, v := range fn.Locals {
		if strings.HasPrefix(v.Name, "p$") {
			t.Error("rewrite fired although the index escapes")
		}
	}
}

func TestIncDecSemantics(t *testing.T) {
	checkAll(t, `
int main() {
	int i = 5, a, b, c, d;
	int arr[3];
	int *p = arr;
	a = i++;   /* 5, i=6 */
	b = ++i;   /* 7 */
	c = i--;   /* 7, i=6 */
	d = --i;   /* 5 */
	arr[0] = 10; arr[1] = 20; arr[2] = 30;
	p++;
	return a*1000 + b*100 + c*10 + d + *p;   /* 5775 + 20 */
}`, 5795, "", machine.Input{})
}

func TestStringsAndLibcalls(t *testing.T) {
	checkAll(t, `
extern int strcmp(char *a, char *b);
extern int strlen(char *s);
extern int sprintf(char *dst, char *fmt, ...);
int main() {
	char buf[32];
	sprintf(buf, "v%d", 42);
	if (strcmp(buf, "v42") != 0) return 1;
	return strlen(buf);
}`, 3, "", machine.Input{})
}

func TestMallocHeap(t *testing.T) {
	checkAll(t, `
extern void *malloc(int n);
int main() {
	int *p = (int*)malloc(40);
	int i, s = 0;
	for (i = 0; i < 10; i++) p[i] = i * 3;
	for (i = 0; i < 10; i++) s += p[i];
	return s;
}`, 135, "", machine.Input{})
}

func TestGroundTruthLayout(t *testing.T) {
	src := `
int f(int arg) {
	int x;
	int arr[6];
	char buf[8];
	int *p = &x;
	x = arg;
	arr[0] = *p;
	buf[0] = 'b';
	return arr[0] + buf[0];
}
int main() { return f(1); }`
	for _, prof := range Profiles {
		img, err := Build(src, prof, "t")
		if err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		fr := img.Truth.Frame("f")
		if fr == nil {
			t.Fatalf("%s: no ground truth for f", prof.Name)
		}
		byName := map[string]struct {
			off  int32
			size uint32
		}{}
		for _, v := range fr.Vars {
			byName[v.Name] = struct {
				off  int32
				size uint32
			}{v.Offset, v.Size}
		}
		// x is address-taken: always a stack object. arr and buf always.
		for _, want := range []struct {
			name string
			size uint32
		}{{"x", 4}, {"arr", 24}, {"buf", 8}} {
			got, ok := byName[want.name]
			if !ok {
				t.Errorf("%s: %s missing from ground truth", prof.Name, want.name)
				continue
			}
			if got.size != want.size {
				t.Errorf("%s: %s size = %d, want %d", prof.Name, want.name, got.size, want.size)
			}
			if got.off >= 0 {
				t.Errorf("%s: %s offset = %d, want negative (below sp0)", prof.Name, want.name, got.off)
			}
		}
		// Objects must not overlap.
		vars := fr.Vars
		for i := 0; i < len(vars); i++ {
			for j := i + 1; j < len(vars); j++ {
				if vars[i].Overlaps(vars[j]) {
					t.Errorf("%s: %v overlaps %v", prof.Name, vars[i], vars[j])
				}
			}
		}
	}
}

func TestRegisterAllocationDiffersByProfile(t *testing.T) {
	src := `
int main() {
	int i, s = 0;
	for (i = 0; i < 100; i = i + 1) s = s + i;
	return s % 256;
}`
	imgO0, err := Build(src, GCC12O0, "o0")
	if err != nil {
		t.Fatal(err)
	}
	imgO3, err := Build(src, GCC12O3, "o3")
	if err != nil {
		t.Fatal(err)
	}
	// O3 keeps i and s in registers: the loop body must not touch memory.
	// Count memory operations in each binary.
	countMem := func(code []isa.Instr) int {
		n := 0
		for _, in := range code {
			switch in.Op {
			case isa.LOAD, isa.STORE, isa.STOREI, isa.PUSH, isa.PUSHI, isa.POP:
				n++
			}
		}
		return n
	}
	m0, m3 := countMem(imgO0.Code), countMem(imgO3.Code)
	if m3 >= m0 {
		t.Errorf("O3 has %d memory ops, O0 has %d; want fewer at O3", m3, m0)
	}
	// And the O0 truth has stack slots for i and s, the O3 truth does not
	// (ignoring the save/spill bookkeeping objects).
	named := func(f2 *layout.Frame) int {
		n := 0
		for _, v := range f2.Vars {
			if !strings.HasPrefix(v.Name, "__") {
				n++
			}
		}
		return n
	}
	if f := imgO0.Truth.Frame("main"); f == nil || named(f) != 2 {
		t.Errorf("O0 truth = %v", imgO0.Truth.Frame("main"))
	}
	if f := imgO3.Truth.Frame("main"); f == nil || named(f) != 0 {
		t.Errorf("O3 truth = %v", imgO3.Truth.Frame("main"))
	}
}

func TestO3FasterThanO0(t *testing.T) {
	src := `
int work(int n) {
	int i, j, s = 0;
	int a[32];
	for (i = 0; i < 32; i++) a[i] = i;
	for (j = 0; j < n; j++) {
		for (i = 0; i < 32; i++) s += a[i] * j;
	}
	return s % 1000;
}
int main() { return work(50); }`
	cycles := map[string]uint64{}
	for _, prof := range []Profile{GCC12O0, GCC12O3, GCC44O3} {
		img, err := Build(src, prof, "t")
		if err != nil {
			t.Fatal(err)
		}
		res, err := machine.Execute(img, machine.Input{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		cycles[prof.Name] = res.Cycles
	}
	if cycles["gcc12-O3"] >= cycles["gcc12-O0"] {
		t.Errorf("O3 (%d cycles) not faster than O0 (%d)", cycles["gcc12-O3"], cycles["gcc12-O0"])
	}
	if cycles["gcc12-O3"] >= cycles["gcc44-O3"] {
		t.Errorf("gcc12-O3 (%d cycles) not faster than gcc44-O3 (%d)",
			cycles["gcc12-O3"], cycles["gcc44-O3"])
	}
}

func TestVoidFunction(t *testing.T) {
	checkAll(t, `
int g = 0;
void bump(int d) { g += d; return; }
int main() { bump(4); bump(5); return g; }`, 9, "", machine.Input{})
}

func TestDeepExpressionSpills(t *testing.T) {
	// Forces the push/pop temporary path even at O3 (call results are not
	// leaves).
	checkAll(t, `
int id(int x) { return x; }
int main() {
	return (id(1) + id(2)) * (id(3) + id(4)) - (id(5) * id(2) + id(1));
}`, 21-11, "", machine.Input{})
}

func TestComparisonSignedness(t *testing.T) {
	checkAll(t, `
int main() {
	int a = -1, b = 1;
	int r = 0;
	if (a < b) r += 1;        /* signed: true */
	if (a > 100) r += 2;      /* signed: false */
	if (b <= 1) r += 4;
	if (a >= 0) r += 8;       /* false */
	if (a == -1) r += 16;
	if (a != b) r += 32;
	return r;
}`, 1+4+16+32, "", machine.Input{})
}
