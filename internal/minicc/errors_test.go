package minicc_test

import (
	"strings"
	"testing"

	"wytiwyg/internal/minicc"
)

// Malformed source must produce errors, never panics, and the error should
// carry enough position or token context to locate the problem.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"garbage", "@#$%^&"},
		{"unterminated-string", `int main() { return "abc; }`},
		{"unterminated-char", `int main() { return 'a; }`},
		{"unterminated-comment", "/* no end\nint main() { return 0; }"},
		{"missing-semicolon", "int main() { int x = 1 return x; }"},
		{"missing-brace", "int main() { if (1) { return 0; }"},
		{"missing-paren", "int main( { return 0; }"},
		{"bad-toplevel", "return 0;"},
		{"type-only", "int;"},
		{"struct-no-name-no-body", "struct;"},
		{"array-no-size", "int main() { int a[]; return 0; }"},
		{"call-unclosed", "int main() { return f(1, 2; }"},
		{"assign-to-literal-chain", "int main() { 3 = = 4; }"},
		{"stray-else", "int main() { else { return 1; } }"},
		{"case-outside-switch", "int main() { case 3: return 1; }"},
		{"dangling-binop", "int main() { return 1 + ; }"},
		{"double-return-type", "int int main() { return 0; }"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			prog, err := minicc.Parse(c.src)
			if err == nil {
				err = minicc.Check(prog)
			}
			if err == nil {
				t.Fatalf("accepted malformed source:\n%s", c.src)
			}
		})
	}
}

// Semantically wrong programs must fail the checker.
func TestCheckErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring expected in the error, "" for any
	}{
		{"undefined-var", "int main() { return nope; }", "nope"},
		{"undefined-fn", "int main() { return nope(1); }", "nope"},
		{"redefined-fn", "int f() { return 1; } int f() { return 2; } int main() { return f(); }", "f"},
		{"void-in-expr", "void g() {} int main() { return g() + 1; }", ""},
		{"deref-int", "int main() { int x; return *x; }", ""},
		{"member-of-int", "int main() { int x; return x.y; }", ""},
		{"unknown-member", "struct s { int a; }; int main() { struct s v; return v.b; }", ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			prog, err := minicc.Parse(c.src)
			if err == nil {
				err = minicc.Check(prog)
			}
			if err == nil {
				t.Fatalf("accepted bad program:\n%s", c.src)
			}
			if c.want != "" && !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// An empty translation unit is legal C and must parse and check cleanly —
// it only fails later, at code generation, for want of a main.
func TestEmptyUnitParses(t *testing.T) {
	prog, err := minicc.Parse("")
	if err != nil {
		t.Fatalf("empty unit rejected by parser: %v", err)
	}
	if err := minicc.Check(prog); err != nil {
		t.Fatalf("empty unit rejected by checker: %v", err)
	}
}

// Deeply nested expressions must not blow the parser's stack: either a
// clean parse or a clean error.
func TestDeepNesting(t *testing.T) {
	depth := 2000
	src := "int main() { return " + strings.Repeat("(", depth) + "1" +
		strings.Repeat(")", depth) + "; }"
	if _, err := minicc.Parse(src); err != nil {
		t.Logf("deep nesting rejected cleanly: %v", err)
	}
}
