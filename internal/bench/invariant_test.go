package bench

import (
	"fmt"
	"testing"

	"wytiwyg/internal/core"
	"wytiwyg/internal/layout"
	"wytiwyg/internal/minicc/gen"
)

// Recovered-layout invariants, checked over random programs: variables the
// symbolizer emits must be non-empty, mutually disjoint (the union-find
// coalescing guarantees each traced byte one owner) and must never claim
// the return-address slot [0,4) that separates locals from stack-passed
// arguments.
func checkFrameInvariants(t *testing.T, fn string, fr *layout.Frame) {
	t.Helper()
	retSlot := layout.Var{Name: "ret", Offset: 0, Size: 4}
	for i, v := range fr.Vars {
		if v.Size == 0 {
			t.Errorf("%s: empty variable %s", fn, v)
		}
		if v.Size > 1<<20 || v.Offset < -(1<<20) || v.Offset > 1<<20 {
			t.Errorf("%s: implausible variable %s", fn, v)
		}
		if v.Overlaps(retSlot) {
			t.Errorf("%s: variable %s overlaps the return-address slot", fn, v)
		}
		for _, o := range fr.Vars[i+1:] {
			if v.Overlaps(o) {
				t.Errorf("%s: overlapping variables %s and %s", fn, v, o)
			}
		}
	}
}

func TestRandomProgramFrameInvariants(t *testing.T) {
	last := int64(112)
	if testing.Short() {
		last = 104
	}
	for seed := int64(101); seed <= last; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			src := generate(seed)
			prof := gen.Profiles[int(seed)%len(gen.Profiles)]
			img, err := gen.Build(src, prof, "inv")
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			p, err := core.LiftBinary(img, nil)
			if err != nil {
				t.Fatalf("lift: %v", err)
			}
			if err := p.Refine(); err != nil {
				t.Fatalf("refine: %v", err)
			}
			if p.Recovered == nil || len(p.Recovered.Frames) == 0 {
				t.Fatal("no recovered layout")
			}
			for fn, fr := range p.Recovered.Frames {
				checkFrameInvariants(t, fn, fr)
			}
		})
	}
}

// The compiler's ground-truth side-table must satisfy the same geometric
// invariants — the accuracy metric is only meaningful against a
// well-formed reference.
func TestGroundTruthFrameInvariants(t *testing.T) {
	for seed := int64(201); seed <= 208; seed++ {
		src := generate(seed)
		for _, prof := range gen.Profiles {
			img, err := gen.Build(src, prof, "truth")
			if err != nil {
				t.Fatalf("compile (%s): %v", prof.Name, err)
			}
			if img.Truth == nil {
				t.Fatalf("%s: no ground-truth side-table", prof.Name)
			}
			for fn, fr := range img.Truth.Frames {
				checkFrameInvariants(t, prof.Name+"/"+fn, fr)
			}
		}
	}
}
