// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§6) over the reproduction's SPEC-motif
// suite. For each benchmark and compiler configuration it measures, in
// deterministic emulator cycles,
//
//   - the input binary (the paper's baseline for Table 1's ratios),
//   - the BinRec-style recompilation without symbolization,
//   - the WYTIWYG recompilation (full refinement lifting + optimizer),
//   - the SecondWrite-style static recompilation (which may fail),
//
// verifies functionality (output equality — §6.1), and compares recovered
// stack layouts against the compiler's ground truth (§6.3 / Figure 7).
package bench

import (
	"bytes"
	"fmt"
	"math"

	"wytiwyg/internal/bench/progs"
	"wytiwyg/internal/codegen"
	"wytiwyg/internal/core"
	"wytiwyg/internal/layout"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/obj"
	"wytiwyg/internal/opt"
	"wytiwyg/internal/staticsym"
	"wytiwyg/internal/symbolize"
)

// Configs are the Table 1 columns (compiler/optimization configurations).
var Configs = []gen.Profile{gen.GCC12O3, gen.GCC12O0, gen.Clang16O3, gen.GCC44O3}

// Measurement is one binary's run on the ref input.
type Measurement struct {
	Cycles   uint64 // cost-model cycles on the ref input
	ExitCode int32  // the run's exit status
	Output   string // captured program output
	// Failed marks systems that could not produce a binary (SecondWrite's
	// "—" cells); Reason says why.
	Failed bool
	Reason string // see Failed
}

// Row is one (program, config) cell group of Table 1.
type Row struct {
	Program string // benchmark name
	Config  string // compiler profile name

	Native Measurement // the input binary
	NoSym  Measurement // recompiled without symbolization
	Sym    Measurement // recompiled with WYTIWYG symbolization
	SW     Measurement // recompiled with the static (SecondWrite-like) symbolizer

	// Accuracy compares the WYTIWYG-recovered layout with ground truth
	// (only meaningful once per program; computed on every config).
	Accuracy layout.Accuracy
}

// Ratio helpers (normalized runtime relative to the input binary).
func ratio(m Measurement, base Measurement) float64 {
	if m.Failed || base.Cycles == 0 {
		return 0
	}
	return float64(m.Cycles) / float64(base.Cycles)
}

// NoSymRatio is the Table 1 "no symbolize" cell.
func (r Row) NoSymRatio() float64 { return ratio(r.NoSym, r.Native) }

// SymRatio is the Table 1 "symbolize" cell.
func (r Row) SymRatio() float64 { return ratio(r.Sym, r.Native) }

// SWRatio is the Table 1 SecondWrite cell.
func (r Row) SWRatio() float64 { return ratio(r.SW, r.Native) }

// measure runs an image on the ref input.
func measure(img *obj.Image, input machine.Input) (Measurement, error) {
	var out bytes.Buffer
	res, err := machine.Execute(img, input, &out)
	if err != nil {
		return Measurement{}, err
	}
	return Measurement{Cycles: res.Cycles, ExitCode: res.ExitCode, Output: out.String()}, nil
}

// Scaled returns a copy of a program with its ref input replaced (tests use
// smaller datasets than the full experiments).
func Scaled(p progs.Program, refScale int32) progs.Program {
	p.Ref = machine.Input{Ints: []int32{refScale}}
	return p
}

// RunProgram produces the row for one benchmark under one configuration.
func RunProgram(p progs.Program, prof gen.Profile) (*Row, error) {
	row := &Row{Program: p.Name, Config: prof.Name}
	img, err := gen.Build(p.Src, prof, p.Name+"-"+prof.Name)
	if err != nil {
		return nil, fmt.Errorf("bench: %s/%s: build: %w", p.Name, prof.Name, err)
	}
	row.Native, err = measure(img, p.Ref)
	if err != nil {
		return nil, fmt.Errorf("bench: %s/%s: native: %w", p.Name, prof.Name, err)
	}

	// BinRec baseline: lift, optimize, recompile — no symbolization.
	pl, err := core.LiftBinary(img, p.Inputs())
	if err != nil {
		return nil, fmt.Errorf("bench: %s/%s: lift: %w", p.Name, prof.Name, err)
	}
	opt.Pipeline(pl.Mod)
	noSymImg, err := codegen.Compile(pl.Mod, p.Name+"-nosym")
	if err != nil {
		return nil, fmt.Errorf("bench: %s/%s: nosym codegen: %w", p.Name, prof.Name, err)
	}
	row.NoSym, err = measure(noSymImg, p.Ref)
	if err != nil {
		return nil, fmt.Errorf("bench: %s/%s: nosym run: %w", p.Name, prof.Name, err)
	}

	// WYTIWYG: full refinement lifting.
	pw, err := core.LiftBinary(img, p.Inputs())
	if err != nil {
		return nil, err
	}
	if err := pw.Refine(); err != nil {
		return nil, fmt.Errorf("bench: %s/%s: refine: %w", p.Name, prof.Name, err)
	}
	promoted := opt.PipelineWith(pw.Mod, opt.PipelineOpts{})
	symImg, err := codegen.Compile(pw.Mod, p.Name+"-sym")
	if err != nil {
		return nil, fmt.Errorf("bench: %s/%s: sym codegen: %w", p.Name, prof.Name, err)
	}
	row.Sym, err = measure(symImg, p.Ref)
	if err != nil {
		return nil, fmt.Errorf("bench: %s/%s: sym run: %w", p.Name, prof.Name, err)
	}

	// Splitting accuracy (§6.3): the recovered layout vs ground truth,
	// restricted to lifted (traced) functions. "Recovered" counts the
	// objects that survive as frame memory plus the scalars mem2reg
	// promoted to registers; call-plumbing slots the optimizer proved dead
	// do not count, mirroring the paper's comparison against the final
	// recompiled binary's layout.
	recovered := symbolize.RecoveredLayout(pw.Mod)
	for _, name := range promoted.FuncNames() {
		pf := promoted.Frame(name)
		rf := recovered.Frame(name)
		if rf == nil {
			recovered.Add(pf)
			continue
		}
		rf.Vars = append(rf.Vars, pf.Vars...)
		rf.Sort()
	}
	truth := layout.NewProgram()
	for _, f := range pw.Mod.Funcs {
		if tf := img.Truth.Frame(f.Name); tf != nil {
			truth.Add(tf)
		}
	}
	row.Accuracy = layout.Compare(truth, recovered)

	// SecondWrite-like static recompilation.
	row.SW = runStatic(img, p)

	// Functionality (§6.1): every produced binary must match the input
	// binary's behaviour.
	if row.NoSym.Output != row.Native.Output || row.NoSym.ExitCode != row.Native.ExitCode {
		return nil, fmt.Errorf("bench: %s/%s: nosym functionality mismatch", p.Name, prof.Name)
	}
	if row.Sym.Output != row.Native.Output || row.Sym.ExitCode != row.Native.ExitCode {
		return nil, fmt.Errorf("bench: %s/%s: sym functionality mismatch", p.Name, prof.Name)
	}
	if !row.SW.Failed &&
		(row.SW.Output != row.Native.Output || row.SW.ExitCode != row.Native.ExitCode) {
		return nil, fmt.Errorf("bench: %s/%s: secondwrite functionality mismatch", p.Name, prof.Name)
	}
	return row, nil
}

// runStatic performs the SecondWrite-style static pipeline; failures are
// recorded, not fatal (they are the "—" cells).
func runStatic(img *obj.Image, p progs.Program) Measurement {
	ps, err := core.LiftBinary(img, p.Inputs())
	if err != nil {
		return Measurement{Failed: true, Reason: err.Error()}
	}
	if err := ps.RefineRegSave(); err != nil {
		return Measurement{Failed: true, Reason: err.Error()}
	}
	if err := ps.RefineVarArgs(); err != nil {
		return Measurement{Failed: true, Reason: err.Error()}
	}
	if err := ps.RefineStackRef(); err != nil {
		return Measurement{Failed: true, Reason: err.Error()}
	}
	if _, err := staticsym.Apply(ps.Mod, ps.SPOffsets); err != nil {
		return Measurement{Failed: true, Reason: err.Error()}
	}
	opt.Pipeline(ps.Mod)
	swImg, err := codegen.Compile(ps.Mod, p.Name+"-sw")
	if err != nil {
		return Measurement{Failed: true, Reason: err.Error()}
	}
	m, err := measure(swImg, p.Ref)
	if err != nil {
		return Measurement{Failed: true, Reason: err.Error()}
	}
	return m
}

// Suite runs every benchmark under every configuration. scale < 0 keeps the
// full ref inputs; otherwise it overrides the ref scale (for quick runs).
func Suite(programs []progs.Program, refScale int32) ([]*Row, error) {
	var rows []*Row
	for _, p := range programs {
		if refScale > 0 {
			p = Scaled(p, refScale)
		}
		for _, prof := range Configs {
			row, err := RunProgram(p, prof)
			if err != nil {
				return rows, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Geomean computes the geometric mean of positive ratios.
func Geomean(xs []float64) float64 {
	prod := 1.0
	n := 0
	for _, x := range xs {
		if x > 0 {
			prod *= x
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Pow(prod, 1.0/float64(n))
}
