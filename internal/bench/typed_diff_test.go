package bench

import (
	"fmt"
	"io"
	"testing"

	"wytiwyg/internal/bench/progs"
	"wytiwyg/internal/core"
	"wytiwyg/internal/ir"
	"wytiwyg/internal/irexec"
	"wytiwyg/internal/layout"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/typerec"
)

// Differential validation of the type-recovery stage: a committed slot
// type is a width contract — every concrete access that lands inside the
// slot at runtime must hit one of the claimed scalar cells exactly. The
// recorder keeps the live slot activations (pushed when the alloca
// executes, popped when its frame returns) and checks every executed
// load/store against every live claimed slot it falls into, including
// accesses made from callees through escaped pointers — the accesses the
// per-function inference never attributed. A single width mismatch is an
// unsound claim, the one failure mode the commit rule must never allow.

// liveSlot is one claimed slot's runtime activation.
type liveSlot struct {
	v    *ir.Value // the alloca
	base uint64
	size uint64
	t    *layout.Type
}

// typedRecorder checks the width contract during execution.
type typedRecorder struct {
	slotType map[*ir.Value]*layout.Type // allocas with a committed claim
	accWidth map[*ir.Value]int64        // load/store → access width
	live     map[*irexec.Frame][]liveSlot

	checked    int
	violations []string
}

func (r *typedRecorder) FnEnter(fr *irexec.Frame) {}
func (r *typedRecorder) FnExit(fr *irexec.Frame, ret *ir.Value, _ []uint32) {
	delete(r.live, fr)
}
func (r *typedRecorder) Phi(fr *irexec.Frame, _, _ *ir.Value, _ uint32)    {}
func (r *typedRecorder) CallPre(fr *irexec.Frame, _ *ir.Value, _ []uint32) {}
func (r *typedRecorder) Exec(fr *irexec.Frame, v *ir.Value, args []uint32, result uint32) {
	if t, ok := r.slotType[v]; ok {
		r.live[fr] = append(r.live[fr], liveSlot{
			v: v, base: uint64(result), size: uint64(v.AllocSize), t: t,
		})
		return
	}
	sz, ok := r.accWidth[v]
	if !ok {
		return
	}
	addr := uint64(args[0])
	// Scan every live activation, not just the executing frame's: an
	// access through an escaped pointer runs in a callee but lands in a
	// caller's slot, and the claim must hold there too.
	for _, slots := range r.live {
		for _, s := range slots {
			if addr < s.base || addr >= s.base+s.size {
				continue
			}
			r.checked++
			if !s.t.AdmitsAccess(int64(addr-s.base), sz) {
				r.violations = append(r.violations, fmt.Sprintf(
					"UNSOUND type claim in %s: %d-byte access %v at %s+%d, claimed %s",
					s.v.Block.Func.Name, sz, v, s.v.Name, addr-s.base, s.t))
			}
		}
	}
}

// typedClaims runs the type-recovery inference exactly as the pipeline
// stage does (per-function analysis, then cross-call unification) and
// returns the committed slot claims plus a recorder primed for the
// module's accesses.
func typedClaims(m *ir.Module) (*typedRecorder, int) {
	results := make([]*typerec.FuncResult, len(m.Funcs))
	for i, f := range m.Funcs {
		results[i] = typerec.AnalyzeFunc(f)
	}
	typerec.Unify(m, results)
	rec := &typedRecorder{
		slotType: make(map[*ir.Value]*layout.Type),
		accWidth: make(map[*ir.Value]int64),
		live:     make(map[*irexec.Frame][]liveSlot),
	}
	committed := 0
	for _, r := range results {
		for _, a := range r.Allocas() {
			if t := r.Slots[a]; t.Committed() {
				rec.slotType[a] = t
				committed++
			}
		}
	}
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, v := range b.Insts {
				if v.Op == ir.OpLoad || v.Op == ir.OpStore {
					sz := int64(v.Size)
					if sz == 0 {
						sz = 4
					}
					rec.accWidth[v] = sz
				}
			}
		}
	}
	return rec, committed
}

// runTyped executes the module under the recorder for each input (one
// empty-input run when none are given).
func runTyped(t *testing.T, m *ir.Module, inputs []machine.Input, name string) *typedRecorder {
	t.Helper()
	rec, _ := typedClaims(m)
	if len(inputs) == 0 {
		inputs = []machine.Input{{}}
	}
	for i := range inputs {
		ip, err := irexec.New(m, inputs[i], io.Discard)
		if err != nil {
			t.Fatalf("%s: interp: %v", name, err)
		}
		ip.Tr = rec
		if _, err := ip.Run(); err != nil {
			t.Fatalf("%s: run: %v", name, err)
		}
	}
	return rec
}

func TestTypedDifferentialNoUnsoundWidthClaims(t *testing.T) {
	seeds := int64(12)
	if testing.Short() {
		seeds = 4
	}
	totalChecked, totalCommitted := 0, 0
	for seed := int64(1); seed <= seeds; seed++ {
		src := generate(seed)
		prof := gen.Profiles[int(seed)%len(gen.Profiles)]
		img, err := gen.Build(src, prof, "typedfuzz")
		if err != nil {
			t.Fatalf("seed %d: compile (%s): %v", seed, prof.Name, err)
		}
		p, err := core.LiftBinary(img, nil)
		if err != nil {
			t.Fatalf("seed %d: lift: %v", seed, err)
		}
		if err := p.Refine(); err != nil {
			t.Fatalf("seed %d: refine: %v", seed, err)
		}
		rec, committed := typedClaims(p.Mod)
		totalCommitted += committed
		ip, err := irexec.New(p.Mod, machine.Input{}, io.Discard)
		if err != nil {
			t.Fatalf("seed %d: interp: %v", seed, err)
		}
		ip.Tr = rec
		if _, err := ip.Run(); err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}
		for _, viol := range rec.violations {
			t.Errorf("seed %d: %s\n%s", seed, viol, src)
		}
		totalChecked += rec.checked
	}
	if totalChecked == 0 || totalCommitted == 0 {
		t.Fatalf("differential corpus checked %d in-slot accesses against %d committed claims; want both > 0",
			totalChecked, totalCommitted)
	}
	t.Logf("checked %d in-slot accesses against %d committed slot claims", totalChecked, totalCommitted)
}

// The width contract must also hold on the real benchmark corpus, where
// arrays, structs and pointer tables give the inference real aggregates
// to commit.
func TestTypedDifferentialBenchCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by the random-program differential in short mode")
	}
	totalChecked := 0
	for _, prog := range progs.All[:3] {
		p := Scaled(prog, 3)
		img, err := gen.Build(p.Src, gen.GCC12O3, p.Name)
		if err != nil {
			t.Fatalf("%s: build: %v", p.Name, err)
		}
		pl, err := core.LiftBinary(img, p.Inputs())
		if err != nil {
			t.Fatalf("%s: lift: %v", p.Name, err)
		}
		if err := pl.Refine(); err != nil {
			t.Fatalf("%s: refine: %v", p.Name, err)
		}
		rec := runTyped(t, pl.Mod, pl.Inputs, p.Name)
		for _, viol := range rec.violations {
			t.Errorf("%s: %s", p.Name, viol)
		}
		totalChecked += rec.checked
	}
	if totalChecked == 0 {
		t.Fatal("no in-slot accesses checked against committed claims")
	}
	t.Logf("checked %d in-slot accesses", totalChecked)
}
