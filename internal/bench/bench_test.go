package bench

import (
	"testing"

	"wytiwyg/internal/bench/progs"
	"wytiwyg/internal/layout"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
)

// Every benchmark must compile and run natively under every profile, with
// identical behaviour across profiles (the programs are profile-independent
// C).
func TestProgramsRunNatively(t *testing.T) {
	for _, p := range progs.All {
		small := Scaled(p, 2)
		var want Measurement
		for pi, prof := range gen.Profiles {
			img, err := gen.Build(small.Src, prof, p.Name)
			if err != nil {
				t.Fatalf("%s/%s: %v", p.Name, prof.Name, err)
			}
			m, err := measure(img, small.Ref)
			if err != nil {
				t.Fatalf("%s/%s: %v", p.Name, prof.Name, err)
			}
			if m.Output == "" {
				t.Errorf("%s/%s: no output", p.Name, prof.Name)
			}
			if pi == 0 {
				want = m
			} else if m.Output != want.Output || m.ExitCode != want.ExitCode {
				t.Errorf("%s/%s: behaviour differs across profiles: %q/%d vs %q/%d",
					p.Name, prof.Name, m.Output, m.ExitCode, want.Output, want.ExitCode)
			}
		}
	}
}

// E1 (functionality) at reduced scale: the full pipeline must hold for
// every benchmark; run one modern and one legacy profile to bound time.
func TestFunctionalitySmall(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus-scale pipeline run; the race-enabled short pass covers the pipeline in internal/core")
	}
	for _, p := range progs.All {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			small := Scaled(p, 3)
			for _, prof := range []gen.Profile{gen.GCC12O3, gen.GCC44O3} {
				row, err := RunProgram(small, prof)
				if err != nil {
					t.Fatalf("%s: %v", prof.Name, err)
				}
				// RunProgram already asserts functionality; sanity-check the
				// measurements exist.
				if row.Sym.Cycles == 0 || row.NoSym.Cycles == 0 {
					t.Errorf("%s: zero cycle measurement", prof.Name)
				}
				// Symbolization must not be slower than the raw recompile.
				if row.Sym.Cycles > row.NoSym.Cycles {
					t.Errorf("%s: sym %d cycles > nosym %d", prof.Name,
						row.Sym.Cycles, row.NoSym.Cycles)
				}
			}
		})
	}
}

// Figure 7 shape at small scale: accuracy dominated by matched+oversized.
func TestAccuracyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus-scale accuracy run")
	}
	var agg layout.Accuracy
	for _, p := range progs.All {
		p := p
		small := Scaled(p, 3)
		row, err := RunProgram(small, gen.GCC12O0)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		agg.Add(row.Accuracy)
	}
	if agg.TruthTotal == 0 {
		t.Fatal("no ground-truth objects compared")
	}
	rec := agg.Recall()
	prec := agg.Precision()
	t.Logf("aggregate precision=%.3f recall=%.3f counts=%v (of %d)",
		prec, rec, agg.Counts, agg.TruthTotal)
	if rec < 0.6 {
		t.Errorf("recall %.3f too low", rec)
	}
	if prec < 0.6 {
		t.Errorf("precision %.3f too low", prec)
	}
}

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); g < 3.99 || g > 4.01 {
		t.Errorf("Geomean = %v", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Errorf("empty Geomean = %v", g)
	}
	if g := Geomean([]float64{0, 5}); g != 5 {
		t.Errorf("Geomean skipping zeros = %v", g)
	}
}

func TestScaled(t *testing.T) {
	p := progs.All[0]
	s := Scaled(p, 9)
	if len(s.Ref.Ints) != 1 || s.Ref.Ints[0] != 9 {
		t.Errorf("Scaled ref = %v", s.Ref)
	}
	if p.Ref.Ints[0] == 9 {
		t.Error("Scaled mutated the original")
	}
	if _, ok := progs.ByName("hmmer"); !ok {
		t.Error("ByName failed")
	}
	if _, ok := progs.ByName("nope"); ok {
		t.Error("ByName found a ghost")
	}
}

var _ = machine.Input{}
