package bench

import (
	"fmt"
	"io"

	"wytiwyg/internal/bench/progs"
	"wytiwyg/internal/codegen"
	"wytiwyg/internal/core"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/opt"
)

// AblationRow measures which parts of the stack contribute the speedup the
// paper attributes to fine-grained symbolization (§6.2's analysis): the
// same refined module compiled with optimizer passes selectively disabled.
type AblationRow struct {
	Program string // benchmark name
	Config  string // compiler profile name
	Native  uint64 // input binary's cycles
	// Cycles per variant.
	NoSym      uint64 // unsymbolized recompile (full optimizer)
	SymNoMem   uint64 // symbolized, but no mem2reg/forwarding (alias info unused)
	SymNoLICM  uint64 // symbolized, no loop-invariant motion
	SymFull    uint64 // symbolized, full optimizer
	StaticOnly uint64 // static (SecondWrite-like) symbolization, 0 if failed
}

// Ablation runs the variants for one benchmark/configuration.
func Ablation(p progs.Program, prof gen.Profile) (*AblationRow, error) {
	row := &AblationRow{Program: p.Name, Config: prof.Name}
	img, err := gen.Build(p.Src, prof, p.Name)
	if err != nil {
		return nil, err
	}
	nat, err := measure(img, p.Ref)
	if err != nil {
		return nil, err
	}
	row.Native = nat.Cycles

	run := func(refine bool, o opt.PipelineOpts) (uint64, error) {
		pl, err := core.LiftBinary(img, p.Inputs())
		if err != nil {
			return 0, err
		}
		if refine {
			if err := pl.Refine(); err != nil {
				return 0, err
			}
		}
		opt.PipelineWith(pl.Mod, o)
		out, err := codegen.Compile(pl.Mod, p.Name)
		if err != nil {
			return 0, err
		}
		m, err := measure(out, p.Ref)
		if err != nil {
			return 0, err
		}
		if m.Output != nat.Output || m.ExitCode != nat.ExitCode {
			return 0, fmt.Errorf("ablation: %s: behaviour mismatch", p.Name)
		}
		return m.Cycles, nil
	}
	if row.NoSym, err = run(false, opt.PipelineOpts{}); err != nil {
		return nil, err
	}
	if row.SymNoMem, err = run(true, opt.PipelineOpts{NoMem2Reg: true, NoMemOpt: true}); err != nil {
		return nil, err
	}
	if row.SymNoLICM, err = run(true, opt.PipelineOpts{NoLICM: true}); err != nil {
		return nil, err
	}
	if row.SymFull, err = run(true, opt.PipelineOpts{}); err != nil {
		return nil, err
	}
	if sw := runStatic(img, p); !sw.Failed {
		row.StaticOnly = sw.Cycles
	}
	return row, nil
}

// AblationReport renders the ablation table.
func AblationReport(w io.Writer, rows []*AblationRow) {
	fmt.Fprintln(w, "Ablation: normalized runtime vs the input binary (lower is better)")
	fmt.Fprintln(w, "  no-sym      : recompiled without symbolization (BinRec baseline)")
	fmt.Fprintln(w, "  sym-no-mem  : symbolized, but mem2reg/store-forwarding disabled")
	fmt.Fprintln(w, "  sym-no-licm : symbolized, loop-invariant motion disabled")
	fmt.Fprintln(w, "  sym-full    : the complete WYTIWYG pipeline")
	fmt.Fprintln(w, "  static      : SecondWrite-like static symbolization (— on failure)")
	fmt.Fprintf(w, "%-12s %-10s %8s %12s %12s %9s %8s\n",
		"benchmark", "config", "no-sym", "sym-no-mem", "sym-no-licm", "sym-full", "static")
	rat := func(c uint64, n uint64) string {
		if c == 0 || n == 0 {
			return "—"
		}
		return fmt.Sprintf("%.2f", float64(c)/float64(n))
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-10s %8s %12s %12s %9s %8s\n",
			r.Program, r.Config,
			rat(r.NoSym, r.Native), rat(r.SymNoMem, r.Native),
			rat(r.SymNoLICM, r.Native), rat(r.SymFull, r.Native),
			rat(r.StaticOnly, r.Native))
	}
}
