package bench

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"wytiwyg/internal/codegen"
	"wytiwyg/internal/core"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/opt"
)

// Differential testing: generate random (but well-defined) mini-C programs
// and require the complete pipeline — compile at every profile, trace,
// refine, optimize, recompile — to preserve behaviour exactly. This is the
// reproduction's analogue of the paper's functionality validation at scale.

// progGen emits a random program with bounded loops, arrays, scalars,
// helper calls and pointer use. All arithmetic avoids division by zero and
// all indexes stay in bounds, so behaviour is deterministic and defined.
type progGen struct {
	r   *rand.Rand
	buf strings.Builder
	// scalar variable names in scope
	scalars []string
	arrays  []string // fixed length 8
	depth   int
}

func (g *progGen) pick(list []string) string { return list[g.r.Intn(len(list))] }

// expr emits a well-defined integer expression.
func (g *progGen) expr(depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(4) {
		case 0:
			return fmt.Sprintf("%d", g.r.Intn(100))
		case 1:
			return g.pick(g.scalars)
		case 2:
			return fmt.Sprintf("%s[%d]", g.pick(g.arrays), g.r.Intn(8))
		default:
			return fmt.Sprintf("%s[%s]", g.pick(g.arrays), g.safeIndex())
		}
	}
	op := []string{"+", "-", "*", "&", "|", "^"}[g.r.Intn(6)]
	return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), op, g.expr(depth-1))
}

// safeIndex emits an expression guaranteed in [0,8).
func (g *progGen) safeIndex() string {
	v := g.pick(g.scalars)
	return fmt.Sprintf("((%s %% 8 + 8) %% 8)", v)
}

func (g *progGen) stmt(depth int) {
	ind := strings.Repeat("\t", g.depth+1)
	switch g.r.Intn(6) {
	case 0: // scalar assignment
		fmt.Fprintf(&g.buf, "%s%s = %s;\n", ind, g.pick(g.scalars), g.expr(2))
	case 1: // array store
		fmt.Fprintf(&g.buf, "%s%s[%s] = %s;\n", ind, g.pick(g.arrays), g.safeIndex(), g.expr(2))
	case 2: // bounded for loop with a reserved counter (never reassigned)
		if depth <= 0 {
			fmt.Fprintf(&g.buf, "%s%s += 1;\n", ind, g.pick(g.scalars))
			return
		}
		v := fmt.Sprintf("l%d", g.depth)
		fmt.Fprintf(&g.buf, "%sfor (%s = 0; %s < %d; %s++) {\n", ind, v, v, 2+g.r.Intn(6), v)
		g.depth++
		n := 1 + g.r.Intn(2)
		for i := 0; i < n; i++ {
			g.stmt(depth - 1)
		}
		g.depth--
		fmt.Fprintf(&g.buf, "%s}\n", ind)
	case 3: // if/else
		if depth <= 0 {
			fmt.Fprintf(&g.buf, "%s%s ^= 3;\n", ind, g.pick(g.scalars))
			return
		}
		fmt.Fprintf(&g.buf, "%sif (%s > %s) {\n", ind, g.expr(1), g.expr(1))
		g.depth++
		g.stmt(depth - 1)
		g.depth--
		fmt.Fprintf(&g.buf, "%s} else {\n", ind)
		g.depth++
		g.stmt(depth - 1)
		g.depth--
		fmt.Fprintf(&g.buf, "%s}\n", ind)
	case 4: // helper call
		fmt.Fprintf(&g.buf, "%s%s = mix(%s, %s);\n", ind,
			g.pick(g.scalars), g.expr(1), g.expr(1))
	default: // pointer write through a derived pointer
		fmt.Fprintf(&g.buf, "%s*(%s + %s) = %s;\n", ind,
			g.pick(g.arrays), g.safeIndex(), g.expr(1))
	}
}

func generate(seed int64) string {
	r := rand.New(rand.NewSource(seed))
	g := &progGen{r: r, scalars: []string{"x", "y", "z"}, arrays: []string{"va", "vb"}}
	g.buf.WriteString("extern int printf(char *fmt, ...);\n")
	g.buf.WriteString("int mix(int a, int b) { return a * 3 + b - (a & b); }\n")
	g.buf.WriteString("int main() {\n")
	g.buf.WriteString("\tint x = 1, y = 2, z = 3;\n")
	g.buf.WriteString("\tint l0 = 0, l1 = 0, l2 = 0, l3 = 0;\n")
	g.buf.WriteString("\tint va[8];\n\tint vb[8];\n\tint i;\n")
	g.buf.WriteString("\tfor (i = 0; i < 8; i++) { va[i] = i; vb[i] = 7 - i; }\n")
	n := 4 + r.Intn(6)
	for i := 0; i < n; i++ {
		g.stmt(2)
	}
	g.buf.WriteString("\tint sum = x + y + z + l0 + l1 + l2 + l3;\n")
	g.buf.WriteString("\tfor (i = 0; i < 8; i++) sum += va[i] * 5 + vb[i];\n")
	g.buf.WriteString("\tprintf(\"%d\\n\", sum);\n")
	g.buf.WriteString("\treturn sum % 251;\n}\n")
	return g.buf.String()
}

func TestDifferentialRandomPrograms(t *testing.T) {
	programs := int64(30)
	if testing.Short() {
		programs = 6
	}
	for seed := int64(1); seed <= programs; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			src := generate(seed)
			prof := gen.Profiles[int(seed)%len(gen.Profiles)]
			img, err := gen.Build(src, prof, "fuzz")
			if err != nil {
				t.Fatalf("compile (%s):\n%s\nerr: %v", prof.Name, src, err)
			}
			var natOut bytes.Buffer
			nat, err := machine.Execute(img, machine.Input{}, &natOut)
			if err != nil {
				t.Fatalf("native: %v\n%s", err, src)
			}
			p, err := core.LiftBinary(img, nil)
			if err != nil {
				t.Fatalf("lift: %v\n%s", err, src)
			}
			if err := p.Refine(); err != nil {
				t.Fatalf("refine: %v\n%s", err, src)
			}
			opt.Pipeline(p.Mod)
			out, err := codegen.Compile(p.Mod, "fuzz-rec")
			if err != nil {
				t.Fatalf("codegen: %v\n%s", err, src)
			}
			var recOut bytes.Buffer
			rec, err := machine.Execute(out, machine.Input{}, &recOut)
			if err != nil {
				t.Fatalf("recompiled run: %v\n%s", err, src)
			}
			if rec.ExitCode != nat.ExitCode || recOut.String() != natOut.String() {
				t.Errorf("behaviour diverged (%s): %d/%q vs %d/%q\n%s",
					prof.Name, rec.ExitCode, recOut.String(),
					nat.ExitCode, natOut.String(), src)
			}
		})
	}
}
