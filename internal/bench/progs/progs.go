// Package progs contains the reproduction's benchmark suite: ten mini-C
// workloads named after and motif-matched to the SPECint 2006 programs the
// paper evaluates (§6). Each is a real, loop-and-pointer-heavy computation
// with deterministic output; the `train` input drives extra trace coverage
// and `ref` is the measured dataset, mirroring the paper's use of the SPEC
// ref inputs for both tracing and validation.
package progs

import "wytiwyg/internal/machine"

// Program is one benchmark.
type Program struct {
	Name string // benchmark name (the SPEC program it mirrors)
	// Motif documents which SPEC behaviour the workload recreates.
	Motif string
	Src   string // mini-C source text
	// Train is an additional coverage input.
	Train machine.Input
	// Ref is the measured input.
	Ref machine.Input
}

// Inputs returns the trace inputs (train + ref).
func (p Program) Inputs() []machine.Input {
	return []machine.Input{p.Train, p.Ref}
}

// All lists the suite in the paper's Table 1 row order.
var All = []Program{
	{
		Name:  "bzip2",
		Motif: "block compression: run-length + move-to-front + order-0 model",
		Src:   bzip2Src,
		Train: machine.Input{Ints: []int32{6}},
		Ref:   machine.Input{Ints: []int32{26}},
	},
	{
		Name:  "gcc",
		Motif: "compiler: tokenizer + recursive-descent parser + constant folder",
		Src:   gccSrc,
		Train: machine.Input{Ints: []int32{4}},
		Ref:   machine.Input{Ints: []int32{18}},
	},
	{
		Name:  "mcf",
		Motif: "network optimization: Bellman-Ford relaxation over arc arrays",
		Src:   mcfSrc,
		Train: machine.Input{Ints: []int32{8}},
		Ref:   machine.Input{Ints: []int32{26}},
	},
	{
		Name:  "gobmk",
		Motif: "board game: flood-fill liberty counting and greedy play",
		Src:   gobmkSrc,
		Train: machine.Input{Ints: []int32{4}},
		Ref:   machine.Input{Ints: []int32{12}},
	},
	{
		Name:  "hmmer",
		Motif: "profile HMM: Viterbi-style dynamic-programming matrix fill",
		Src:   hmmerSrc,
		Train: machine.Input{Ints: []int32{6}},
		Ref:   machine.Input{Ints: []int32{34}},
	},
	{
		Name:  "sjeng",
		Motif: "game tree: alpha-beta search with evaluation and move ordering",
		Src:   sjengSrc,
		Train: machine.Input{Ints: []int32{5}},
		Ref:   machine.Input{Ints: []int32{9}},
	},
	{
		Name:  "libquantum",
		Motif: "quantum simulation: gate sweeps over an amplitude register",
		Src:   libquantumSrc,
		Train: machine.Input{Ints: []int32{6}},
		Ref:   machine.Input{Ints: []int32{40}},
	},
	{
		Name:  "h264ref",
		Motif: "video coding: 4x4 integer transform + SAD motion search",
		Src:   h264refSrc,
		Train: machine.Input{Ints: []int32{3}},
		Ref:   machine.Input{Ints: []int32{12}},
	},
	{
		Name:  "astar",
		Motif: "pathfinding: A* over a weighted grid with an open list",
		Src:   astarSrc,
		Train: machine.Input{Ints: []int32{7}},
		Ref:   machine.Input{Ints: []int32{19}},
	},
	{
		Name:  "xalancbmk",
		Motif: "document transform: token tree build + fnptr-dispatched rendering",
		Src:   xalancbmkSrc,
		Train: machine.Input{Ints: []int32{4}},
		Ref:   machine.Input{Ints: []int32{14}},
	},
}

// ByName finds a benchmark.
func ByName(name string) (Program, bool) {
	for _, p := range All {
		if p.Name == name {
			return p, true
		}
	}
	return Program{}, false
}

const bzip2Src = `
extern int printf(char *fmt, ...);
extern int input_int(int i);

int seed = 12345;
char raw[4096];
char rle[8192];
char mtf[8192];
int freq[256];

int nextRand() {
	seed = seed * 1103515245 + 12345;
	int v = (seed >> 16) % 32768;
	if (v < 0) v = -v;
	return v;
}

int generate(int n) {
	int i, run = 0;
	char c = 'a';
	for (i = 0; i < n; i++) {
		if (run == 0) {
			c = (char)('a' + nextRand() % 16);
			run = 1 + nextRand() % 9;
		}
		raw[i] = c;
		run--;
	}
	return n;
}

/* run-length encode raw[0..n) into rle, returning its length */
int runLength(int n) {
	int i = 0, out = 0;
	while (i < n) {
		char c = raw[i];
		int run = 0;
		while (i + run < n && raw[i + run] == c && run < 255) run++;
		rle[out] = c;
		rle[out + 1] = (char)run;
		out += 2;
		i += run;
	}
	return out;
}

/* move-to-front transform of rle[0..n) into mtf */
int moveToFront(int n) {
	char order[256];
	int i, j;
	for (i = 0; i < 256; i++) order[i] = (char)i;
	for (i = 0; i < n; i++) {
		char c = rle[i];
		j = 0;
		while (order[j] != c) j++;
		mtf[i] = (char)j;
		while (j > 0) {
			order[j] = order[j - 1];
			j--;
		}
		order[0] = c;
	}
	return n;
}

/* order-0 frequency model cost, scaled */
int entropyCost(int n) {
	int i, cost = 0;
	for (i = 0; i < 256; i++) freq[i] = 0;
	for (i = 0; i < n; i++) {
		int b = mtf[i];
		if (b < 0) b += 256;
		freq[b]++;
	}
	for (i = 0; i < 256; i++) {
		int f = freq[i];
		int bits = 8;
		while (f > 0) { bits--; f = f / 2; }
		if (bits < 1) bits = 1;
		cost += freq[i] * bits;
	}
	return cost;
}

int main() {
	int scale = input_int(0);
	int n = 128 * scale;
	if (n > 4096) n = 4096;
	int total = 0, block;
	for (block = 0; block < 4; block++) {
		generate(n);
		int r = runLength(n);
		moveToFront(r);
		total += entropyCost(r) + r;
	}
	printf("bzip2 checksum=%d\n", total);
	return total % 251;
}
`

const gccSrc = `
extern int printf(char *fmt, ...);
extern int sprintf(char *dst, char *fmt, ...);
extern int input_int(int i);

int seed = 99;
char srcbuf[512];
int pos = 0;

/* expression node pool */
int nkind[512];
int nval[512];
int nleft[512];
int nright[512];
int nodes = 0;

int nextRand() {
	seed = seed * 1103515245 + 12345;
	int v = (seed >> 16) % 32768;
	if (v < 0) v = -v;
	return v;
}

/* generate a random arithmetic expression string */
int emit(int depth, int at) {
	if (depth <= 0 || at > 480) {
		return at + sprintf(&srcbuf[at], "%d", 1 + nextRand() % 97);
	}
	int op = nextRand() % 4;
	char c = '+';
	if (op == 1) c = '-';
	if (op == 2) c = '*';
	if (op == 3) c = '+';
	srcbuf[at] = '(';
	at++;
	at = emit(depth - 1, at);
	srcbuf[at] = c;
	at++;
	at = emit(depth - 1, at);
	srcbuf[at] = ')';
	return at + 1;
}

int peek() { return srcbuf[pos]; }

int newNode(int kind, int val, int l, int r) {
	nkind[nodes] = kind;
	nval[nodes] = val;
	nleft[nodes] = l;
	nright[nodes] = r;
	nodes++;
	return nodes - 1;
}

int parseExpr();

int parsePrimary() {
	if (peek() == '(') {
		pos++;
		int e = parseExpr();
		pos++; /* ')' */
		return e;
	}
	int v = 0;
	while (peek() >= '0' && peek() <= '9') {
		v = v * 10 + (peek() - '0');
		pos++;
	}
	return newNode(0, v, -1, -1);
}

int parseExpr() {
	int l = parsePrimary();
	while (peek() == '+' || peek() == '-' || peek() == '*') {
		int op = peek();
		pos++;
		int r = parsePrimary();
		int kind = 1;
		if (op == '-') kind = 2;
		if (op == '*') kind = 3;
		l = newNode(kind, 0, l, r);
	}
	return l;
}

/* constant folding pass over the tree */
int fold(int n) {
	switch (nkind[n]) {
	case 0: return nval[n];
	case 1: return fold(nleft[n]) + fold(nright[n]);
	case 2: return fold(nleft[n]) - fold(nright[n]);
	case 3: return fold(nleft[n]) * fold(nright[n]);
	default: return 0;
	}
}

int main() {
	int scale = input_int(0);
	int total = 0, i;
	for (i = 0; i < scale; i++) {
		pos = 0;
		nodes = 0;
		int end = emit(4, 0);
		srcbuf[end] = 0;
		int root = parseExpr();
		int v = fold(root);
		total += (v % 9973) + nodes;
	}
	printf("gcc checksum=%d nodes=%d\n", total, nodes);
	return total % 251;
}
`

const mcfSrc = `
extern int printf(char *fmt, ...);
extern int input_int(int i);

int seed = 7;
int arcFrom[2048];
int arcTo[2048];
int arcCost[2048];
int dist[256];

int nextRand() {
	seed = seed * 1103515245 + 12345;
	int v = (seed >> 16) % 32768;
	if (v < 0) v = -v;
	return v;
}

int main() {
	int scale = input_int(0);
	int nodes = 16 + scale * 4;
	if (nodes > 256) nodes = 256;
	int arcs = nodes * 6;
	if (arcs > 2048) arcs = 2048;

	int i, r;
	for (i = 0; i < arcs; i++) {
		arcFrom[i] = nextRand() % nodes;
		arcTo[i] = nextRand() % nodes;
		arcCost[i] = 1 + nextRand() % 97;
	}
	for (i = 0; i < nodes; i++) dist[i] = 1000000;
	dist[0] = 0;

	/* Bellman-Ford relaxations: the mcf-style pointer-chasing sweep */
	int changed = 1;
	for (r = 0; r < nodes && changed; r++) {
		changed = 0;
		for (i = 0; i < arcs; i++) {
			int f = arcFrom[i];
			int t = arcTo[i];
			int nd = dist[f] + arcCost[i];
			if (nd < dist[t]) {
				dist[t] = nd;
				changed = 1;
			}
		}
	}
	int total = 0;
	for (i = 0; i < nodes; i++) {
		if (dist[i] < 1000000) total += dist[i];
	}
	printf("mcf checksum=%d rounds=%d\n", total, r);
	return total % 251;
}
`

const gobmkSrc = `
extern int printf(char *fmt, ...);
extern int input_int(int i);

int seed = 31;
char board[196]; /* 14x14 max */
char mark[196];
int size = 9;

int nextRand() {
	seed = seed * 1103515245 + 12345;
	int v = (seed >> 16) % 32768;
	if (v < 0) v = -v;
	return v;
}

/* flood-fill the group at (x,y) counting liberties */
int liberties(int x, int y, char color) {
	if (x < 0 || y < 0 || x >= size || y >= size) return 0;
	int at = y * size + x;
	if (mark[at]) return 0;
	mark[at] = 1;
	char c = board[at];
	if (c == 0) return 1;
	if (c != color) return 0;
	return liberties(x - 1, y, color) + liberties(x + 1, y, color) +
		liberties(x, y - 1, color) + liberties(x, y + 1, color);
}

int clearMarks() {
	int i;
	for (i = 0; i < size * size; i++) mark[i] = 0;
	return 0;
}

int main() {
	int scale = input_int(0);
	size = 7 + scale / 4;
	if (size > 13) size = 13;
	int moves = scale * 12;
	int i, total = 0;
	for (i = 0; i < size * size; i++) board[i] = 0;

	char color = 1;
	for (i = 0; i < moves; i++) {
		/* greedy: try a few random spots, keep the one with most liberties */
		int best = -1, bestLib = -1, t;
		for (t = 0; t < 6; t++) {
			int at = nextRand() % (size * size);
			if (board[at] != 0) continue;
			board[at] = color;
			clearMarks();
			int lib = liberties(at % size, at / size, color);
			board[at] = 0;
			if (lib > bestLib) { bestLib = lib; best = at; }
		}
		if (best >= 0) {
			board[best] = color;
			total += bestLib;
		}
		if (color == 1) color = 2;
		else color = 1;
	}
	printf("gobmk checksum=%d size=%d\n", total, size);
	return total % 251;
}
`

const hmmerSrc = `
extern int printf(char *fmt, ...);
extern int input_int(int i);

int seed = 5;
int match[32][8];
int insert[32][8];
int vit[33][8];
char sequence[512];

int nextRand() {
	seed = seed * 1103515245 + 12345;
	int v = (seed >> 16) % 32768;
	if (v < 0) v = -v;
	return v;
}

int max2(int a, int b) { if (a > b) return a; return b; }

int main() {
	int scale = input_int(0);
	int seqLen = 32 + scale * 12;
	if (seqLen > 512) seqLen = 512;
	int states = 8;
	int i, j, k;

	for (i = 0; i < 32; i++) {
		for (j = 0; j < states; j++) {
			match[i][j] = nextRand() % 32 - 16;
			insert[i][j] = nextRand() % 16 - 8;
		}
	}
	for (i = 0; i < seqLen; i++) sequence[i] = (char)(nextRand() % 32);

	/* Viterbi-like fill: the hmmer hot loop */
	int total = 0, pass;
	for (pass = 0; pass < 4; pass++) {
		for (j = 0; j < states; j++) vit[0][j] = 0;
		for (i = 1; i <= seqLen; i++) {
			int row = i % 33;
			int prev = (i - 1) % 33;
			int sym = sequence[i - 1];
			for (j = 0; j < states; j++) {
				int m = vit[prev][j] + match[sym % 32][j];
				int ins = 0;
				if (j > 0) ins = vit[row][j - 1] + insert[sym % 32][j];
				int diag = 0;
				if (j > 0) diag = vit[prev][j - 1] + match[sym % 32][j] + 2;
				vit[row][j] = max2(m, max2(ins, diag));
			}
		}
		k = (seqLen) % 33;
		for (j = 0; j < states; j++) total += vit[k][j];
	}
	printf("hmmer checksum=%d len=%d\n", total, seqLen);
	return total % 251;
}
`

const sjengSrc = `
extern int printf(char *fmt, ...);
extern int input_int(int i);

int seed = 77;
int pile[8];
int nodesVisited = 0;

int nextRand() {
	seed = seed * 1103515245 + 12345;
	int v = (seed >> 16) % 32768;
	if (v < 0) v = -v;
	return v;
}

int evaluate() {
	int i, v = 0;
	for (i = 0; i < 8; i++) v += pile[i] * (i + 1);
	return v % 64 - 32;
}

/* alpha-beta over a take-away game */
int search(int depth, int alpha, int beta, int side) {
	nodesVisited++;
	if (depth == 0) {
		if (side == 1) return evaluate();
		return -evaluate();
	}
	int i, take;
	int any = 0;
	for (i = 0; i < 8; i++) {
		for (take = 1; take <= 3 && take <= pile[i]; take++) {
			any = 1;
			pile[i] -= take;
			int score = -search(depth - 1, -beta, -alpha, -side);
			pile[i] += take;
			if (score >= beta) return beta;
			if (score > alpha) alpha = score;
		}
	}
	if (!any) return -100 + depth;
	return alpha;
}

int main() {
	int scale = input_int(0);
	int depth = 3 + scale / 4;
	if (depth > 6) depth = 6;
	int game, total = 0;
	for (game = 0; game < 3; game++) {
		int i;
		for (i = 0; i < 8; i++) pile[i] = 1 + nextRand() % 3;
		total += search(depth, -1000, 1000, 1);
	}
	printf("sjeng checksum=%d nodes=%d\n", total, nodesVisited);
	return (total + nodesVisited) % 251;
}
`

const libquantumSrc = `
extern int printf(char *fmt, ...);
extern int input_int(int i);

int reg[1024];
int scratch[1024];

int main() {
	int scale = input_int(0);
	int qubits = 8;
	int n = 1 << qubits; /* 256 amplitudes */
	int sweeps = scale * 4;
	int i, s;

	for (i = 0; i < n; i++) reg[i] = i * 2654435761;

	/* gate sweeps: the libquantum array-walk signature */
	for (s = 0; s < sweeps; s++) {
		int target = s % qubits;
		int bit = 1 << target;
		/* controlled-not sweep */
		for (i = 0; i < n; i++) {
			if (i & bit) scratch[i] = reg[i ^ bit];
			else scratch[i] = reg[i];
		}
		/* phase-ish mixing sweep */
		for (i = 0; i < n; i++) {
			reg[i] = scratch[i] + (scratch[i ^ bit] >> 3) + s;
		}
	}
	int total = 0;
	for (i = 0; i < n; i++) total ^= reg[i];
	if (total < 0) total = -total;
	printf("libquantum checksum=%d sweeps=%d\n", total, sweeps);
	return total % 251;
}
`

const h264refSrc = `
extern int printf(char *fmt, ...);
extern int input_int(int i);

int seed = 3;
char frame[4096];  /* 64x64 reference */
char cur[256];     /* 16x16 current macroblock */
int blockA[4][4];
int blockB[4][4];

int nextRand() {
	seed = seed * 1103515245 + 12345;
	int v = (seed >> 16) % 32768;
	if (v < 0) v = -v;
	return v;
}

int absInt(int v) { if (v < 0) return -v; return v; }

/* 4x4 integer transform, H.264 style */
int transform4x4() {
	int i, j;
	for (i = 0; i < 4; i++) {
		int s0 = blockA[i][0] + blockA[i][3];
		int s1 = blockA[i][1] + blockA[i][2];
		int d0 = blockA[i][0] - blockA[i][3];
		int d1 = blockA[i][1] - blockA[i][2];
		blockB[i][0] = s0 + s1;
		blockB[i][1] = 2 * d0 + d1;
		blockB[i][2] = s0 - s1;
		blockB[i][3] = d0 - 2 * d1;
	}
	int acc = 0;
	for (j = 0; j < 4; j++) {
		int s0 = blockB[0][j] + blockB[3][j];
		int s1 = blockB[1][j] + blockB[2][j];
		acc += s0 + s1;
	}
	return acc;
}

/* sum of absolute differences for motion search */
int sad(int ox, int oy) {
	int x, y, acc = 0;
	for (y = 0; y < 16; y++) {
		for (x = 0; x < 16; x++) {
			int fx = ox + x;
			int fy = oy + y;
			acc += absInt(cur[y * 16 + x] - frame[fy * 64 + fx]);
		}
	}
	return acc;
}

int main() {
	int scale = input_int(0);
	int i, j, mb, total = 0;
	for (i = 0; i < 4096; i++) frame[i] = (char)(nextRand() % 64);
	for (i = 0; i < 256; i++) cur[i] = (char)(nextRand() % 64);

	int macroblocks = scale * 2;
	for (mb = 0; mb < macroblocks; mb++) {
		/* diamond-ish motion search */
		int bestX = 24, bestY = 24;
		int best = sad(bestX, bestY);
		int step;
		for (step = 8; step > 0; step = step / 2) {
			int dx, dy, improved = 1;
			while (improved) {
				improved = 0;
				for (dy = -1; dy <= 1; dy++) {
					for (dx = -1; dx <= 1; dx++) {
						int nx = bestX + dx * step;
						int ny = bestY + dy * step;
						if (nx < 0 || ny < 0 || nx > 47 || ny > 47) continue;
						int s = sad(nx, ny);
						if (s < best) {
							best = s;
							bestX = nx;
							bestY = ny;
							improved = 1;
						}
					}
				}
			}
		}
		/* transform the residual corner block */
		for (i = 0; i < 4; i++) {
			for (j = 0; j < 4; j++) {
				blockA[i][j] = cur[i * 16 + j] - frame[(bestY + i) * 64 + bestX + j];
			}
		}
		total += transform4x4() + best;
		cur[mb % 256] = (char)(total % 61);
	}
	printf("h264ref checksum=%d\n", total);
	return total % 251;
}
`

const astarSrc = `
extern int printf(char *fmt, ...);
extern int input_int(int i);

int seed = 17;
int cost[1024];   /* 32x32 grid */
int gScore[1024];
int openList[1024];
int openCount = 0;
char closed[1024];
int W = 32;

int nextRand() {
	seed = seed * 1103515245 + 12345;
	int v = (seed >> 16) % 32768;
	if (v < 0) v = -v;
	return v;
}

int heuristic(int at, int goal) {
	int ax = at % W, ay = at / W;
	int gx = goal % W, gy = goal / W;
	int dx = ax - gx, dy = ay - gy;
	if (dx < 0) dx = -dx;
	if (dy < 0) dy = -dy;
	return dx + dy;
}

int pushOpen(int at) {
	openList[openCount] = at;
	openCount++;
	return openCount;
}

/* pop the open node with the least g+h (linear scan priority queue) */
int popBest(int goal) {
	int best = 0, i;
	for (i = 1; i < openCount; i++) {
		int a = openList[i];
		int b = openList[best];
		if (gScore[a] + heuristic(a, goal) < gScore[b] + heuristic(b, goal)) {
			best = i;
		}
	}
	int at = openList[best];
	openList[best] = openList[openCount - 1];
	openCount--;
	return at;
}

int neighbors(int at, int *out) {
	int n = 0;
	int x = at % W, y = at / W;
	if (x > 0) { out[n] = at - 1; n++; }
	if (x < W - 1) { out[n] = at + 1; n++; }
	if (y > 0) { out[n] = at - W; n++; }
	if (y < W - 1) { out[n] = at + W; n++; }
	return n;
}

int main() {
	int scale = input_int(0);
	int i, q, total = 0;
	int queries = scale;
	for (i = 0; i < W * W; i++) cost[i] = 1 + nextRand() % 9;

	for (q = 0; q < queries; q++) {
		int start = nextRand() % (W * W);
		int goal = nextRand() % (W * W);
		for (i = 0; i < W * W; i++) {
			gScore[i] = 1000000;
			closed[i] = 0;
		}
		openCount = 0;
		gScore[start] = 0;
		pushOpen(start);
		int found = 0;
		while (openCount > 0 && !found) {
			int at = popBest(goal);
			if (at == goal) { found = 1; break; }
			if (closed[at]) continue;
			closed[at] = 1;
			int nb[4];
			int n = neighbors(at, nb);
			for (i = 0; i < n; i++) {
				int next = nb[i];
				int ng = gScore[at] + cost[next];
				if (ng < gScore[next]) {
					gScore[next] = ng;
					pushOpen(next);
				}
			}
		}
		total += gScore[goal] % 1000;
	}
	printf("astar checksum=%d\n", total);
	return total % 251;
}
`

const xalancbmkSrc = `
extern int printf(char *fmt, ...);
extern int sprintf(char *dst, char *fmt, ...);
extern int strlen(char *s);
extern int strcmp(char *a, char *b);
extern int input_int(int i);

int seed = 21;

/* document node pool: a tiny DOM */
int kind[256];     /* 0=text 1=elem 2=attr */
int value[256];
int firstChild[256];
int nextSib[256];
int nodeCount = 0;

char outbuf[4096];
int outLen = 0;

int nextRand() {
	seed = seed * 1103515245 + 12345;
	int v = (seed >> 16) % 32768;
	if (v < 0) v = -v;
	return v;
}

int newNode(int k, int v) {
	kind[nodeCount] = k;
	value[nodeCount] = v;
	firstChild[nodeCount] = -1;
	nextSib[nodeCount] = -1;
	nodeCount++;
	return nodeCount - 1;
}

int addChild(int parent, int child) {
	if (firstChild[parent] < 0) {
		firstChild[parent] = child;
		return child;
	}
	int c = firstChild[parent];
	while (nextSib[c] >= 0) c = nextSib[c];
	nextSib[c] = child;
	return child;
}

/* build a random document tree */
int build(int depth) {
	int n = newNode(1, nextRand() % 12);
	if (depth <= 0) return n;
	int kids = 1 + nextRand() % 3;
	int i;
	for (i = 0; i < kids && nodeCount < 250; i++) {
		int k = nextRand() % 3;
		if (k == 0) addChild(n, newNode(0, nextRand() % 100));
		else if (k == 2) addChild(n, newNode(2, nextRand() % 50));
		else addChild(n, build(depth - 1));
	}
	return n;
}

int renderText(int n);
int renderElem(int n);
int renderAttr(int n);

/* render dispatch through function pointers: the virtual-call motif */
int render(int n) {
	fnptr table[3];
	table[0] = &renderText;
	table[1] = &renderElem;
	table[2] = &renderAttr;
	fnptr f = table[kind[n]];
	return f(n);
}

int renderText(int n) {
	outLen += sprintf(&outbuf[outLen], "t%d", value[n]);
	return 1;
}

int renderAttr(int n) {
	outLen += sprintf(&outbuf[outLen], "@%d", value[n]);
	return 1;
}

int renderElem(int n) {
	int count = 1;
	outLen += sprintf(&outbuf[outLen], "<e%d>", value[n]);
	int c = firstChild[n];
	while (c >= 0 && outLen < 3900) {
		count += render(c);
		c = nextSib[c];
	}
	outLen += sprintf(&outbuf[outLen], "</e%d>", value[n]);
	return count;
}

int main() {
	int scale = input_int(0);
	int doc, total = 0;
	for (doc = 0; doc < scale; doc++) {
		nodeCount = 0;
		outLen = 0;
		int root = build(3);
		int rendered = render(root);
		outbuf[outLen] = 0;
		total += rendered + strlen(outbuf) % 97;
		if (strcmp(outbuf, "") == 0) total -= 1000; /* never: sanity check */
	}
	printf("xalancbmk checksum=%d nodes=%d\n", total, nodeCount);
	return total % 251;
}
`
