package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"wytiwyg/internal/bench/progs"
	"wytiwyg/internal/layout"
)

// Report renderers: each prints the same rows/series as the corresponding
// table or figure in the paper.

// byProgram groups rows preserving suite order.
func byProgram(rows []*Row) ([]string, map[string]map[string]*Row) {
	var names []string
	seen := map[string]bool{}
	grid := map[string]map[string]*Row{}
	for _, r := range rows {
		if !seen[r.Program] {
			seen[r.Program] = true
			names = append(names, r.Program)
		}
		if grid[r.Program] == nil {
			grid[r.Program] = map[string]*Row{}
		}
		grid[r.Program][r.Config] = r
	}
	return names, grid
}

func cell(v float64) string {
	if v == 0 {
		return "   — "
	}
	return fmt.Sprintf("%5.2f", v)
}

// Table1 renders the paper's Table 1: normalized runtime of recompiled
// binaries relative to their input binary, per configuration, without and
// with symbolization, plus the SecondWrite column (GCC 4.4 -O3 only, as in
// the paper).
func Table1(w io.Writer, rows []*Row) {
	names, grid := byProgram(rows)
	configs := []string{"gcc12-O3", "gcc12-O0", "clang16-O3", "gcc44-O3"}

	fmt.Fprintln(w, "Table 1. Normalized runtime of recompiled binaries relative to their input binary")
	fmt.Fprintln(w, "(sym ✓ = WYTIWYG stack symbolization; SW = SecondWrite-like static symbolizer)")
	fmt.Fprintf(w, "%-12s %-4s %10s %10s %10s %10s %8s\n",
		"benchmark", "sym", "GCC12 -O3", "GCC12 -O0", "Clang16-O3", "GCC4.4-O3", "SW(4.4)")
	geo := map[string][]float64{}
	geoSym := map[string][]float64{}
	var geoSW []float64
	for _, name := range names {
		noSym := make([]string, len(configs))
		sym := make([]string, len(configs))
		var sw string
		for i, cfg := range configs {
			r := grid[name][cfg]
			if r == nil {
				noSym[i], sym[i] = "   — ", "   — "
				continue
			}
			noSym[i] = cell(r.NoSymRatio())
			sym[i] = cell(r.SymRatio())
			geo[cfg] = append(geo[cfg], r.NoSymRatio())
			geoSym[cfg] = append(geoSym[cfg], r.SymRatio())
			if cfg == "gcc44-O3" {
				sw = cell(r.SWRatio())
				if v := r.SWRatio(); v > 0 {
					geoSW = append(geoSW, v)
				}
			}
		}
		fmt.Fprintf(w, "%-12s %-4s %10s %10s %10s %10s %8s\n",
			name, "", noSym[0], noSym[1], noSym[2], noSym[3], "")
		fmt.Fprintf(w, "%-12s %-4s %10s %10s %10s %10s %8s\n",
			"", "✓", sym[0], sym[1], sym[2], sym[3], sw)
	}
	fmt.Fprintf(w, "%-12s %-4s %10s %10s %10s %10s %8s\n", "Geomean", "",
		cell(Geomean(geo["gcc12-O3"])), cell(Geomean(geo["gcc12-O0"])),
		cell(Geomean(geo["clang16-O3"])), cell(Geomean(geo["gcc44-O3"])), "")
	fmt.Fprintf(w, "%-12s %-4s %10s %10s %10s %10s %8s\n", "", "✓",
		cell(Geomean(geoSym["gcc12-O3"])), cell(Geomean(geoSym["gcc12-O0"])),
		cell(Geomean(geoSym["clang16-O3"])), cell(Geomean(geoSym["gcc44-O3"])),
		cell(Geomean(geoSW)))
}

// Figure6 renders the paper's Figure 6: runtimes of the input binaries (*)
// and the WYTIWYG-recompiled binaries (†) normalized to the native GCC 12.2
// -O3 binary of each benchmark, plus the SecondWrite series (‡).
func Figure6(w io.Writer, rows []*Row) {
	names, grid := byProgram(rows)
	fmt.Fprintln(w, "Figure 6. Runtime normalized to the native GCC 12.2 -O3 binary")
	fmt.Fprintln(w, "(* = input binary, † = WYTIWYG-recompiled, ‡ = SecondWrite-recompiled)")
	series := []struct {
		label string
		get   func(r *Row, base uint64) float64
		cfg   string
	}{
		{"GCC12 -O3 *", func(r *Row, b uint64) float64 { return f64(r.Native.Cycles, b) }, "gcc12-O3"},
		{"GCC12 -O3 †", func(r *Row, b uint64) float64 { return f64(r.Sym.Cycles, b) }, "gcc12-O3"},
		{"GCC12 -O0 *", func(r *Row, b uint64) float64 { return f64(r.Native.Cycles, b) }, "gcc12-O0"},
		{"GCC12 -O0 †", func(r *Row, b uint64) float64 { return f64(r.Sym.Cycles, b) }, "gcc12-O0"},
		{"Clang16-O3 *", func(r *Row, b uint64) float64 { return f64(r.Native.Cycles, b) }, "clang16-O3"},
		{"Clang16-O3 †", func(r *Row, b uint64) float64 { return f64(r.Sym.Cycles, b) }, "clang16-O3"},
		{"GCC4.4-O3 *", func(r *Row, b uint64) float64 { return f64(r.Native.Cycles, b) }, "gcc44-O3"},
		{"GCC4.4-O3 †", func(r *Row, b uint64) float64 { return f64(r.Sym.Cycles, b) }, "gcc44-O3"},
		{"GCC4.4-O3 ‡", func(r *Row, b uint64) float64 {
			if r.SW.Failed {
				return 0
			}
			return f64(r.SW.Cycles, b)
		}, "gcc44-O3"},
	}
	fmt.Fprintf(w, "%-14s", "series")
	for _, n := range names {
		fmt.Fprintf(w, " %9s", truncate(n, 9))
	}
	fmt.Fprintf(w, " %9s\n", "GEOMEAN")
	for _, s := range series {
		fmt.Fprintf(w, "%-14s", s.label)
		var vals []float64
		for _, n := range names {
			base := grid[n]["gcc12-O3"]
			r := grid[n][s.cfg]
			if base == nil || r == nil {
				fmt.Fprintf(w, " %9s", "—")
				continue
			}
			v := s.get(r, base.Native.Cycles)
			if v == 0 {
				fmt.Fprintf(w, " %9s", "—")
				continue
			}
			vals = append(vals, v)
			fmt.Fprintf(w, " %9.2f", v)
		}
		fmt.Fprintf(w, " %9.2f\n", Geomean(vals))
	}
}

func f64(c, base uint64) float64 {
	if base == 0 {
		return 0
	}
	return float64(c) / float64(base)
}

func truncate(s string, n int) string {
	if len(s) > n {
		return s[:n]
	}
	return s
}

// Figure7 renders the accuracy figure: per-benchmark ratios of ground-truth
// stack objects that were matched / oversized / undersized / missed, and
// the aggregate precision/recall the paper reports (94.4% / 87.6%).
func Figure7(w io.Writer, rows []*Row) {
	// Use the gcc12-O0 configuration (everything stack-resident) like the
	// paper's source-compiled ground truth comparison.
	fmt.Fprintln(w, "Figure 7. Accuracy of recovered stack layouts vs compiler ground truth")
	fmt.Fprintf(w, "%-12s %8s %9s %10s %7s %7s\n",
		"benchmark", "matched", "oversized", "undersized", "missed", "objects")
	var agg layout.Accuracy
	names, grid := byProgram(rows)
	for _, name := range names {
		var r *Row
		for _, cfg := range []string{"gcc12-O0", "gcc12-O3", "clang16-O3", "gcc44-O3"} {
			if grid[name][cfg] != nil {
				r = grid[name][cfg]
				break
			}
		}
		if r == nil {
			continue
		}
		a := r.Accuracy
		agg.Add(a)
		fmt.Fprintf(w, "%-12s %8.2f %9.2f %10.2f %7.2f %7d\n", name,
			a.Ratio(layout.Matched), a.Ratio(layout.Oversized),
			a.Ratio(layout.Undersized), a.Ratio(layout.Missed), a.TruthTotal)
	}
	fmt.Fprintf(w, "%-12s %8.2f %9.2f %10.2f %7.2f %7d\n", "ALL",
		agg.Ratio(layout.Matched), agg.Ratio(layout.Oversized),
		agg.Ratio(layout.Undersized), agg.Ratio(layout.Missed), agg.TruthTotal)
	fmt.Fprintf(w, "precision = %.1f%%  recall = %.1f%%  (paper: 94.4%% / 87.6%%)\n",
		agg.Precision()*100, agg.Recall()*100)
}

// Functionality renders the §6.1 verification matrix.
func Functionality(w io.Writer, rows []*Row) {
	fmt.Fprintln(w, "Functionality (§6.1): recompiled output == input-binary output on the ref input")
	names, grid := byProgram(rows)
	var cfgs []string
	for _, r := range rows {
		found := false
		for _, c := range cfgs {
			if c == r.Config {
				found = true
			}
		}
		if !found {
			cfgs = append(cfgs, r.Config)
		}
	}
	sort.Strings(cfgs)
	fmt.Fprintf(w, "%-12s", "benchmark")
	for _, c := range cfgs {
		fmt.Fprintf(w, " %12s", c)
	}
	fmt.Fprintln(w)
	for _, n := range names {
		fmt.Fprintf(w, "%-12s", n)
		for _, c := range cfgs {
			r := grid[n][c]
			status := "—"
			if r != nil {
				// RunProgram fails hard on mismatch, so reaching here means
				// both recompilers passed; report SecondWrite status.
				status = "ok"
				if r.SW.Failed {
					status = "ok (SW —)"
				}
			}
			fmt.Fprintf(w, " %12s", status)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, strings.Repeat("-", 40))
	fmt.Fprintln(w, "WYTIWYG lifted and recompiled every binary with no manual intervention.")
}

var _ = progs.All
