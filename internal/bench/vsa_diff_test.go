package bench

import (
	"io"
	"testing"

	"wytiwyg/internal/bench/progs"
	"wytiwyg/internal/core"
	"wytiwyg/internal/ir"
	"wytiwyg/internal/irexec"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/vsa"
)

// Differential validation of the value-set analysis: every MustNotAlias
// verdict and every PointsToFrameSlot claim the oracle makes about a
// refined module is checked against the concrete addresses observed while
// executing that module. A single counterexample — two "disjoint" accesses
// touching a common byte within one activation, or a "resolved" pointer
// not equal to its alloca+offset — is an unsoundness bug, the one failure
// mode a static alias oracle must never have.

const (
	watchAccess = 1 + iota // record the evaluated address operand
	watchAlloca            // record the slot's runtime base address
)

// vsaRecorder traces concrete addresses for a watched set of values,
// keyed by activation epoch so distinct calls never mix.
type vsaRecorder struct {
	watch map[*ir.Value]int
	rec   map[*ir.Value]map[uint64][]uint64
}

func (r *vsaRecorder) add(e uint64, v *ir.Value, addr uint64) {
	m := r.rec[v]
	if m == nil {
		m = make(map[uint64][]uint64)
		r.rec[v] = m
	}
	for _, a := range m[e] {
		if a == addr {
			return
		}
	}
	m[e] = append(m[e], addr)
}

func (r *vsaRecorder) FnEnter(fr *irexec.Frame)                           {}
func (r *vsaRecorder) FnExit(fr *irexec.Frame, ret *ir.Value, _ []uint32) {}
func (r *vsaRecorder) Phi(fr *irexec.Frame, _, _ *ir.Value, _ uint32)     {}
func (r *vsaRecorder) CallPre(fr *irexec.Frame, _ *ir.Value, _ []uint32)  {}
func (r *vsaRecorder) Exec(fr *irexec.Frame, v *ir.Value, args []uint32, result uint32) {
	switch r.watch[v] {
	case watchAccess:
		r.add(fr.Epoch, v, uint64(args[0]))
	case watchAlloca:
		r.add(fr.Epoch, v, uint64(result))
	}
}

func TestVSADifferentialNoUnsoundVerdicts(t *testing.T) {
	seeds := int64(12)
	if testing.Short() {
		seeds = 4
	}
	totalVerdicts, totalClaims := 0, 0
	for seed := int64(1); seed <= seeds; seed++ {
		src := generate(seed)
		prof := gen.Profiles[int(seed)%len(gen.Profiles)]
		img, err := gen.Build(src, prof, "vsafuzz")
		if err != nil {
			t.Fatalf("seed %d: compile (%s): %v", seed, prof.Name, err)
		}
		p, err := core.LiftBinary(img, nil)
		if err != nil {
			t.Fatalf("seed %d: lift: %v", seed, err)
		}
		if err := p.Refine(); err != nil {
			t.Fatalf("seed %d: refine: %v", seed, err)
		}

		// Collect every oracle verdict about the refined module.
		type access struct {
			v    *ir.Value // the load/store
			addr *ir.Value
			sz   int64
		}
		type pair struct{ a, b access }
		type claim struct {
			acc    access
			alloca *ir.Value
			off    int64
		}
		var pairs []pair
		var claims []claim
		recorder := &vsaRecorder{
			watch: make(map[*ir.Value]int),
			rec:   make(map[*ir.Value]map[uint64][]uint64),
		}
		for _, f := range p.Mod.Funcs {
			orc := vsa.NewOracle(f)
			var accs []access
			for _, b := range f.Blocks {
				for _, v := range b.Insts {
					switch v.Op {
					case ir.OpLoad, ir.OpStore:
						sz := int64(v.Size)
						if sz == 0 {
							sz = 4
						}
						accs = append(accs, access{v, v.Args[0], sz})
						recorder.watch[v] = watchAccess
					case ir.OpAlloca:
						recorder.watch[v] = watchAlloca
					}
				}
			}
			for i := 0; i < len(accs); i++ {
				for j := i + 1; j < len(accs); j++ {
					if orc.MustNotAlias(accs[i].addr, accs[i].sz, accs[j].addr, accs[j].sz) {
						pairs = append(pairs, pair{accs[i], accs[j]})
					}
				}
				if a, off, ok := orc.PointsToFrameSlot(accs[i].addr); ok {
					claims = append(claims, claim{accs[i], a, off})
				}
			}
		}
		totalVerdicts += len(pairs)
		totalClaims += len(claims)

		// Execute the refined module and record the concrete addresses.
		ip, err := irexec.New(p.Mod, machine.Input{}, io.Discard)
		if err != nil {
			t.Fatalf("seed %d: interp: %v", seed, err)
		}
		ip.Tr = recorder
		if _, err := ip.Run(); err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}

		// No two byte ranges of a proven-disjoint pair may intersect within
		// one activation.
		for _, pr := range pairs {
			ra, rb := recorder.rec[pr.a.v], recorder.rec[pr.b.v]
			for e, addrsA := range ra {
				for _, x := range addrsA {
					for _, y := range rb[e] {
						if x < y+uint64(pr.b.sz) && y < x+uint64(pr.a.sz) {
							t.Fatalf("seed %d: UNSOUND MustNotAlias in %s: %v@%#x/%d overlaps %v@%#x/%d (epoch %d)\n%s",
								seed, pr.a.v.Block.Func.Name,
								pr.a.v, x, pr.a.sz, pr.b.v, y, pr.b.sz, e, src)
						}
					}
				}
			}
		}
		// Every resolved pointer must equal its alloca's base plus the
		// claimed offset, in every activation.
		for _, c := range claims {
			bases := recorder.rec[c.alloca]
			for e, addrs := range recorder.rec[c.acc.v] {
				base, ok := bases[e]
				if !ok || len(base) != 1 {
					continue
				}
				want := uint64(uint32(base[0]) + uint32(int32(c.off)))
				for _, got := range addrs {
					if got != want {
						t.Fatalf("seed %d: UNSOUND PointsToFrameSlot in %s: %v at %#x, claimed %s+%d = %#x (epoch %d)\n%s",
							seed, c.acc.v.Block.Func.Name,
							c.acc.v, got, c.alloca.Name, c.off, want, e, src)
					}
				}
			}
		}
	}
	if totalVerdicts == 0 || totalClaims == 0 {
		t.Fatalf("differential corpus exercised %d disjointness verdicts and %d slot claims; want both > 0",
			totalVerdicts, totalClaims)
	}
	t.Logf("validated %d disjointness verdicts and %d slot claims", totalVerdicts, totalClaims)
}

// The oracle must also hold on the real benchmark corpus, where strided
// array loops dominate: every verdict over every function is re-checked
// dynamically on a scaled-down run.
func TestVSADifferentialBenchCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by the random-program differential in short mode")
	}
	for _, prog := range progs.All[:3] {
		p := Scaled(prog, 3)
		img, err := gen.Build(p.Src, gen.GCC12O3, p.Name)
		if err != nil {
			t.Fatalf("%s: build: %v", p.Name, err)
		}
		pl, err := core.LiftBinary(img, p.Inputs())
		if err != nil {
			t.Fatalf("%s: lift: %v", p.Name, err)
		}
		if err := pl.Refine(); err != nil {
			t.Fatalf("%s: refine: %v", p.Name, err)
		}
		verdicts := checkFunctionVerdicts(t, pl, p.Name)
		if verdicts == 0 {
			t.Errorf("%s: no disjointness verdicts exercised", p.Name)
		}
	}
}

// checkFunctionVerdicts validates every MustNotAlias verdict of every
// function in pl's module against a traced execution of all inputs,
// returning the number of verdicts checked.
func checkFunctionVerdicts(t *testing.T, pl *core.Pipeline, name string) int {
	t.Helper()
	type access struct {
		v    *ir.Value
		addr *ir.Value
		sz   int64
	}
	type pair struct{ a, b access }
	var pairs []pair
	recorder := &vsaRecorder{
		watch: make(map[*ir.Value]int),
		rec:   make(map[*ir.Value]map[uint64][]uint64),
	}
	for _, f := range pl.Mod.Funcs {
		orc := vsa.NewOracle(f)
		var accs []access
		for _, b := range f.Blocks {
			for _, v := range b.Insts {
				if v.Op != ir.OpLoad && v.Op != ir.OpStore {
					continue
				}
				sz := int64(v.Size)
				if sz == 0 {
					sz = 4
				}
				accs = append(accs, access{v, v.Args[0], sz})
				recorder.watch[v] = watchAccess
			}
		}
		for i := 0; i < len(accs); i++ {
			for j := i + 1; j < len(accs); j++ {
				if orc.MustNotAlias(accs[i].addr, accs[i].sz, accs[j].addr, accs[j].sz) {
					pairs = append(pairs, pair{accs[i], accs[j]})
				}
			}
		}
	}
	for i := range pl.Inputs {
		ip, err := irexec.New(pl.Mod, pl.Inputs[i], io.Discard)
		if err != nil {
			t.Fatalf("%s: interp: %v", name, err)
		}
		ip.Tr = recorder
		if _, err := ip.Run(); err != nil {
			t.Fatalf("%s: run: %v", name, err)
		}
	}
	for _, pr := range pairs {
		ra, rb := recorder.rec[pr.a.v], recorder.rec[pr.b.v]
		for e, addrsA := range ra {
			for _, x := range addrsA {
				for _, y := range rb[e] {
					if x < y+uint64(pr.b.sz) && y < x+uint64(pr.a.sz) {
						t.Fatalf("%s: UNSOUND MustNotAlias in %s: %v@%#x/%d overlaps %v@%#x/%d (epoch %d)",
							name, pr.a.v.Block.Func.Name,
							pr.a.v, x, pr.a.sz, pr.b.v, y, pr.b.sz, e)
					}
				}
			}
		}
	}
	return len(pairs)
}
