// Package extdb is the database of known external (library) functions:
// their signatures and the constraints describing their effects on pointers
// (§5.3 of the paper). The lifter uses the signatures to lift calls to
// external functions with explicit arguments; the tracing runtime translates
// the constraints into tracking operations; the varargs refinement uses
// FormatStr to recover exact per-call-site signatures (§5.2).
package extdb

// EffectKind enumerates the constraint forms of §5.3.
type EffectKind uint8

// Constraint kinds. Argument slots refer to call argument indices; Ret
// refers to the return value.
const (
	// ObjectSize: the object at arg A is at least args B*C bytes (C == -1
	// means 1).
	ObjectSize EffectKind = iota
	// ZeroTerminated: the data arg A points to is NUL-terminated; the
	// object extends at least to the terminator.
	ZeroTerminated
	// DeriveRet: the returned pointer refers to the same object as arg A.
	DeriveRet
	// Clear: the function overwrites the object at arg A (dropping any
	// stored stack references); B is the size argument index or -1 for
	// "through the terminator".
	Clear
	// Copy: the function copies the object at arg B into arg A; C is the
	// size argument index or -1.
	Copy
	// FormatStr: arg A is a printf-style format string describing the
	// following variadic arguments.
	FormatStr
)

// Effect is one constraint instance.
type Effect struct {
	Kind    EffectKind // which constraint the instance asserts
	A, B, C int        // argument indices; meaning depends on Kind
}

// Sig describes an external function.
type Sig struct {
	Name     string // link name
	Params   int    // fixed parameter count
	Variadic bool   // accepts trailing arguments
	// RetPtr notes that the return value may be a pointer into program
	// memory (heap or derived).
	RetPtr  bool
	Effects []Effect // pointer/aliasing constraints on the arguments
}

// DB holds the signature database, keyed by function name. It covers every
// function the simulated libc provides.
var DB = map[string]Sig{
	"exit":    {Name: "exit", Params: 1},
	"putint":  {Name: "putint", Params: 1},
	"putchar": {Name: "putchar", Params: 1},
	"puts": {Name: "puts", Params: 1,
		Effects: []Effect{{Kind: ZeroTerminated, A: 0}}},
	"printf": {Name: "printf", Params: 1, Variadic: true,
		Effects: []Effect{{Kind: FormatStr, A: 0}}},
	"sprintf": {Name: "sprintf", Params: 2, Variadic: true,
		Effects: []Effect{{Kind: FormatStr, A: 1}, {Kind: Clear, A: 0, B: -1}}},
	"malloc": {Name: "malloc", Params: 1, RetPtr: true},
	"free":   {Name: "free", Params: 1},
	"memset": {Name: "memset", Params: 3, RetPtr: true,
		Effects: []Effect{
			{Kind: ObjectSize, A: 0, B: 2, C: -1},
			{Kind: Clear, A: 0, B: 2},
			{Kind: DeriveRet, A: 0},
		}},
	"memcpy": {Name: "memcpy", Params: 3, RetPtr: true,
		Effects: []Effect{
			{Kind: ObjectSize, A: 0, B: 2, C: -1},
			{Kind: ObjectSize, A: 1, B: 2, C: -1},
			{Kind: Copy, A: 0, B: 1, C: 2},
			{Kind: DeriveRet, A: 0},
		}},
	"strlen": {Name: "strlen", Params: 1,
		Effects: []Effect{{Kind: ZeroTerminated, A: 0}}},
	"strcmp": {Name: "strcmp", Params: 2,
		Effects: []Effect{{Kind: ZeroTerminated, A: 0}, {Kind: ZeroTerminated, A: 1}}},
	"strcpy": {Name: "strcpy", Params: 2, RetPtr: true,
		Effects: []Effect{
			{Kind: ZeroTerminated, A: 1},
			{Kind: Copy, A: 0, B: 1, C: -1},
			{Kind: DeriveRet, A: 0},
		}},
	"strtok": {Name: "strtok", Params: 2, RetPtr: true,
		Effects: []Effect{
			{Kind: ZeroTerminated, A: 1},
			{Kind: DeriveRet, A: 0},
		}},
	"atoi": {Name: "atoi", Params: 1,
		Effects: []Effect{{Kind: ZeroTerminated, A: 0}}},
	"abs":       {Name: "abs", Params: 1},
	"rand":      {Name: "rand", Params: 0},
	"srand":     {Name: "srand", Params: 1},
	"input_int": {Name: "input_int", Params: 1},
	"input_str": {Name: "input_str", Params: 1, RetPtr: true},
}

// Lookup returns the signature for an external function.
func Lookup(name string) (Sig, bool) {
	s, ok := DB[name]
	return s, ok
}
