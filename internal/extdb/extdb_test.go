package extdb_test

import (
	"testing"

	"wytiwyg/internal/extdb"
	"wytiwyg/internal/machine"
)

// Every function the simulated libc implements must be described in the
// database, or the lifter will reject binaries using it.
func TestDBCoversLibsim(t *testing.T) {
	for _, name := range machine.ExtNames {
		sig, ok := extdb.Lookup(name)
		if !ok {
			t.Errorf("external %q missing from the database", name)
			continue
		}
		if sig.Name != name {
			t.Errorf("signature name mismatch: %q vs %q", sig.Name, name)
		}
	}
}

func TestVariadicSignatures(t *testing.T) {
	for _, name := range []string{"printf", "sprintf"} {
		sig, ok := extdb.Lookup(name)
		if !ok || !sig.Variadic {
			t.Errorf("%s must be variadic", name)
		}
		hasFmt := false
		for _, e := range sig.Effects {
			if e.Kind == extdb.FormatStr {
				hasFmt = true
			}
		}
		if !hasFmt {
			t.Errorf("%s lacks a FormatStr effect", name)
		}
	}
	if sig, _ := extdb.Lookup("memcpy"); sig.Variadic {
		t.Error("memcpy must not be variadic")
	}
}

func TestEffectShapes(t *testing.T) {
	sig, _ := extdb.Lookup("memcpy")
	var hasCopy, hasSize bool
	for _, e := range sig.Effects {
		switch e.Kind {
		case extdb.Copy:
			hasCopy = true
			if e.A != 0 || e.B != 1 || e.C != 2 {
				t.Errorf("memcpy Copy wired wrong: %+v", e)
			}
		case extdb.ObjectSize:
			hasSize = true
		}
	}
	if !hasCopy || !hasSize {
		t.Errorf("memcpy effects incomplete: %+v", sig.Effects)
	}
	sig, _ = extdb.Lookup("strtok")
	found := false
	for _, e := range sig.Effects {
		if e.Kind == extdb.DeriveRet && e.A == 0 {
			found = true
		}
	}
	if !found {
		t.Error("strtok must derive its return value from argument 0")
	}
	if _, ok := extdb.Lookup("no_such_function"); ok {
		t.Error("ghost function found")
	}
}
