package lifter_test

import (
	"math/rand"
	"reflect"
	"testing"

	"wytiwyg/internal/funcrec"
	"wytiwyg/internal/isa"
	"wytiwyg/internal/lifter"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/obj"
	"wytiwyg/internal/tracer"
)

// Robustness: every stage that consumes untrusted binary input — the
// decoder, the image loader, the emulator, the tracer, the CFG builder
// and the lifter — must reject garbage with an error, never a panic.
// These tests feed each stage random input; any panic fails the test.

// TestDecodeGarbageNeverPanics decodes random byte buffers. Buffers that
// decode successfully must survive an encode/decode round trip.
func TestDecodeGarbageNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	buf := make([]byte, isa.InstrSize)
	ok := 0
	for i := 0; i < 20000; i++ {
		r.Read(buf)
		in, err := isa.Decode(buf)
		if err != nil {
			continue
		}
		ok++
		enc := make([]byte, isa.InstrSize)
		isa.Encode(enc, &in)
		back, err := isa.Decode(enc)
		if err != nil {
			t.Fatalf("re-decode of encoded instruction failed: %v (%+v)", err, in)
		}
		if !reflect.DeepEqual(in, back) {
			t.Fatalf("decode/encode/decode mismatch:\n %+v\n %+v", in, back)
		}
	}
	if ok == 0 {
		t.Fatal("no random buffer decoded; generator or decoder too strict")
	}
}

// randInstr builds a random instruction biased toward validity: register
// fields in range, branch targets aligned inside the code section.
func randInstr(r *rand.Rand, codeLen int) isa.Instr {
	var in isa.Instr
	in.Op = isa.Op(r.Intn(int(isa.NumOps)))
	in.Cond = isa.Cond(r.Intn(int(isa.NumConds)))
	in.Dst = isa.Reg(r.Intn(isa.NumRegs))
	in.Src = isa.Reg(r.Intn(isa.NumRegs))
	switch r.Intn(3) {
	case 0:
		in.Size = 1
	case 1:
		in.Size = 2
	default:
		in.Size = 4
	}
	in.Signed = r.Intn(2) == 0
	in.Imm = int32(r.Intn(256) - 64)
	switch in.Op {
	case isa.JMP, isa.JCC, isa.CALL:
		in.Imm = int32(isa.CodeBase) + int32(r.Intn(codeLen))*isa.InstrSize
	case isa.DIVI, isa.MODI:
		if in.Imm == 0 {
			in.Imm = 3
		}
	}
	if r.Intn(2) == 0 {
		in.Mem.Base = isa.Reg(r.Intn(isa.NumRegs))
	} else {
		in.Mem.Base = isa.NoReg
	}
	if r.Intn(3) == 0 {
		in.Mem.Index = isa.Reg(r.Intn(isa.NumRegs))
		in.Mem.Scale = []uint8{1, 2, 4, 8}[r.Intn(4)]
	} else {
		in.Mem.Index = isa.NoReg
	}
	in.Mem.Disp = int32(r.Intn(128) - 32)
	return in
}

// TestRandomProgramsNeverPanic loads and executes random instruction
// streams. Runs that halt cleanly are traced and lifted; every stage may
// return an error but none may panic.
func TestRandomProgramsNeverPanic(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	var halted, lifted int
	for i := 0; i < 400; i++ {
		n := 4 + r.Intn(24)
		code := make([]isa.Instr, 0, n+1)
		for j := 0; j < n; j++ {
			code = append(code, randInstr(r, n+1))
		}
		code = append(code, isa.Instr{Op: isa.HALT})
		img := &obj.Image{Code: code, Entry: isa.CodeBase, Name: "fuzz"}
		if err := img.Validate(); err != nil {
			continue
		}
		m, err := machine.New(img, machine.Input{}, nil)
		if err != nil {
			continue
		}
		m.MaxSteps = 50000
		if err := m.Run(); err != nil || !m.Halted() {
			continue
		}
		halted++
		tr := tracer.New(img)
		if _, err := tr.Run(machine.Input{}, nil); err != nil {
			continue
		}
		cfg, err := tr.BuildCFG()
		if err != nil {
			continue
		}
		rec, err := funcrec.Recover(cfg)
		if err != nil {
			continue
		}
		if _, err := lifter.Lift(img, cfg, rec); err != nil {
			continue
		}
		lifted++
	}
	if halted == 0 {
		t.Fatal("no random program halted; generator too hostile to be useful")
	}
	if lifted == 0 {
		t.Log("note: no random program survived lifting (all errored); still panic-free")
	}
	t.Logf("halted=%d lifted=%d of 400", halted, lifted)
}

// TestTruncatedImage checks loader behaviour on degenerate images: empty
// code, an entry point outside the code section, and an entry in the
// middle that immediately falls off the end.
func TestTruncatedImage(t *testing.T) {
	if err := (&obj.Image{Name: "empty"}).Validate(); err == nil {
		t.Error("empty image validated")
	}
	img := &obj.Image{
		Code:  []isa.Instr{{Op: isa.NOP}},
		Entry: isa.CodeBase + 0x100000,
		Name:  "badentry",
	}
	if err := img.Validate(); err == nil {
		t.Error("out-of-range entry validated")
	}
	// Falling off the end of code must be a runtime error, not a panic.
	img2 := &obj.Image{
		Code:  []isa.Instr{{Op: isa.NOP}, {Op: isa.NOP}},
		Entry: isa.CodeBase,
		Name:  "falloff",
	}
	if err := img2.Validate(); err != nil {
		t.Skipf("validator already rejects halt-less code: %v", err)
	}
	m, err := machine.New(img2, machine.Input{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.MaxSteps = 100
	if err := m.Run(); err == nil && m.Halted() {
		t.Error("fell off code end yet halted cleanly")
	}
}
