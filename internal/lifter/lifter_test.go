package lifter

import (
	"bytes"
	"errors"
	"testing"

	"wytiwyg/internal/funcrec"
	"wytiwyg/internal/ir"
	"wytiwyg/internal/irexec"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/tracer"
)

// liftProgram compiles src, traces it under the inputs, and lifts it.
func liftProgram(t *testing.T, src string, prof gen.Profile, inputs []machine.Input) *ir.Module {
	t.Helper()
	img, err := gen.Build(src, prof, "t")
	if err != nil {
		t.Fatalf("%s: build: %v", prof.Name, err)
	}
	if len(inputs) == 0 {
		inputs = []machine.Input{{}}
	}
	tr := tracer.New(img)
	if err := tr.RunAll(inputs, nil); err != nil {
		t.Fatalf("%s: trace: %v", prof.Name, err)
	}
	cfg, err := tr.BuildCFG()
	if err != nil {
		t.Fatalf("%s: cfg: %v", prof.Name, err)
	}
	rec, err := funcrec.Recover(cfg)
	if err != nil {
		t.Fatalf("%s: funcrec: %v", prof.Name, err)
	}
	mod, err := Lift(img, cfg, rec)
	if err != nil {
		t.Fatalf("%s: lift: %v", prof.Name, err)
	}
	return mod
}

// roundTrip checks that the lifted module behaves exactly like the native
// binary for every input, under every compiler profile.
func roundTrip(t *testing.T, src string, inputs []machine.Input) {
	t.Helper()
	if len(inputs) == 0 {
		inputs = []machine.Input{{}}
	}
	for _, prof := range gen.Profiles {
		img, err := gen.Build(src, prof, "t")
		if err != nil {
			t.Fatalf("%s: build: %v", prof.Name, err)
		}
		mod := liftProgram(t, src, prof, inputs)
		for i, input := range inputs {
			var nativeOut bytes.Buffer
			nat, err := machine.Execute(img, input, &nativeOut)
			if err != nil {
				t.Fatalf("%s input %d: native: %v", prof.Name, i, err)
			}
			var liftedOut bytes.Buffer
			res, err := irexec.Run(mod, input, &liftedOut, nil)
			if err != nil {
				t.Fatalf("%s input %d: lifted: %v", prof.Name, i, err)
			}
			if res.ExitCode != nat.ExitCode {
				t.Errorf("%s input %d: exit = %d, native %d", prof.Name, i, res.ExitCode, nat.ExitCode)
			}
			if liftedOut.String() != nativeOut.String() {
				t.Errorf("%s input %d: output %q, native %q",
					prof.Name, i, liftedOut.String(), nativeOut.String())
			}
		}
	}
}

func TestLiftStraightLine(t *testing.T) {
	roundTrip(t, `int main() { return 41 + 1; }`, nil)
}

func TestLiftArithAndBranches(t *testing.T) {
	roundTrip(t, `
extern int input_int(int i);
int main() {
	int n = input_int(0);
	int s = 0, i;
	for (i = 0; i < n; i++) {
		if (i % 3 == 0) s += i;
		else s -= 1;
	}
	return s;
}`, []machine.Input{{Ints: []int32{20}}, {Ints: []int32{7}}})
}

func TestLiftCallsAndRecursion(t *testing.T) {
	roundTrip(t, `
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main() { return fib(10); }`, nil)
}

func TestLiftStackHeavy(t *testing.T) {
	roundTrip(t, `
struct p { int x; int y; };
int f3(int n) { return n / 12; }
struct p *f2(struct p *a, struct p *b) { return a; }
int f1() {
	struct p *ptr;
	struct p a;
	struct p b[3];
	a.x = 3;
	a.y = 4;
	ptr = f2(&a, b);
	b[f3(sizeof(b))] = a;
	ptr->y = b[1].x;
	return ptr->y * 100 + b[2].x * 10 + b[2].y;
}
int main() { return f1(); }`, nil)
}

func TestLiftPrintfVarargs(t *testing.T) {
	roundTrip(t, `
extern int printf(char *fmt, ...);
int main() {
	int i;
	for (i = 0; i < 3; i++) printf("%d:%c ", i, 'a' + i);
	printf("done %s\n", "ok");
	return 0;
}`, nil)
}

func TestLiftExternals(t *testing.T) {
	roundTrip(t, `
extern void *malloc(int n);
extern int memset(void *p, int v, int n);
extern int strlen(char *s);
extern int sprintf(char *dst, char *fmt, ...);
int main() {
	char buf[32];
	int *h = (int*)malloc(16);
	memset(h, 0, 16);
	h[2] = 9;
	sprintf(buf, "x=%d", h[2]);
	return strlen(buf) + h[2];
}`, nil)
}

func TestLiftTailCalls(t *testing.T) {
	roundTrip(t, `
int isOdd(int n);
int isEven(int n) { if (n == 0) return 1; return isOdd(n - 1); }
int isOdd(int n) { if (n == 0) return 0; return isEven(n - 1); }
int main() { return isEven(50) * 10 + isOdd(17); }`, nil)
}

func TestLiftFnPtrIndirectCalls(t *testing.T) {
	roundTrip(t, `
int twice(int x) { return 2 * x; }
int thrice(int x) { return 3 * x; }
int apply(fnptr f, int v) { return f(v); }
int main() { return apply(&twice, 10) + apply(&thrice, 100); }`, nil)
}

func TestLiftSwitchJumpTable(t *testing.T) {
	roundTrip(t, `
extern int input_int(int i);
int classify(int v) {
	switch (v) {
	case 0: return 10;
	case 1: return 20;
	case 2: return 30;
	case 3: return 40;
	case 5: return 60;
	default: return -1;
	}
}
int main() { return classify(input_int(0)) + classify(input_int(1)); }`,
		[]machine.Input{
			{Ints: []int32{0, 3}},
			{Ints: []int32{2, 5}},
			{Ints: []int32{1, 9}},
		})
}

func TestLiftGlobalsAndStrings(t *testing.T) {
	roundTrip(t, `
extern int puts(char *s);
extern int strcmp(char *a, char *b);
int counter = 3;
char *greeting = "hello";
int main() {
	counter += 4;
	if (strcmp(greeting, "hello") == 0) puts("match");
	return counter;
}`, nil)
}

func TestLiftCharsSubreg(t *testing.T) {
	roundTrip(t, `
int main() {
	char a = 'q', b;
	char buf[6];
	int i;
	b = a;                /* subreg copy on clang16 */
	for (i = 0; i < 5; i++) buf[i] = 'A' + i;
	buf[5] = 0;
	return b + buf[4];
}`, nil)
}

// Untraced paths must trap rather than compute wrong results: trace with one
// input, run the lifted module with another that takes a different branch.
func TestLiftUntracedPathTraps(t *testing.T) {
	src := `
extern int input_int(int i);
int main() {
	if (input_int(0) > 10) return 1;
	return 2;
}`
	prof := gen.GCC12O3
	mod := liftProgram(t, src, prof, []machine.Input{{Ints: []int32{5}}})
	// Same branch: fine.
	res, err := irexec.Run(mod, machine.Input{Ints: []int32{7}}, nil, nil)
	if err != nil || res.ExitCode != 2 {
		t.Fatalf("traced path: %v, exit %d", err, res.ExitCode)
	}
	// Other branch: trap.
	_, err = irexec.Run(mod, machine.Input{Ints: []int32{50}}, nil, nil)
	if !errors.Is(err, irexec.ErrTrap) {
		t.Errorf("untraced path: err = %v, want trap", err)
	}
}

// Incremental lifting: merging a second trace covers the other branch.
func TestLiftIncrementalCoverage(t *testing.T) {
	src := `
extern int input_int(int i);
int main() {
	if (input_int(0) > 10) return 1;
	return 2;
}`
	mod := liftProgram(t, src, gen.GCC12O3,
		[]machine.Input{{Ints: []int32{5}}, {Ints: []int32{50}}})
	for _, tc := range []struct {
		in   int32
		want int32
	}{{5, 2}, {50, 1}} {
		res, err := irexec.Run(mod, machine.Input{Ints: []int32{tc.in}}, nil, nil)
		if err != nil || res.ExitCode != tc.want {
			t.Errorf("input %d: %v, exit %d want %d", tc.in, err, res.ExitCode, tc.want)
		}
	}
}

func TestLiftedModuleShape(t *testing.T) {
	mod := liftProgram(t, `
int add(int a, int b) { return a + b; }
int main() { return add(40, 2); }`, gen.GCC12O3, nil)
	f := mod.FuncByName("add")
	if f == nil {
		t.Fatal("add not lifted")
	}
	// BinRec shape: full register file in and out.
	if len(f.Params) != 8 || f.NumRet != 8 {
		t.Errorf("signature: %d params, %d rets", len(f.Params), f.NumRet)
	}
	if mod.Entry == nil || mod.Entry.Name != "_start" {
		t.Errorf("entry = %v", mod.Entry)
	}
	if err := ir.Verify(mod); err != nil {
		t.Errorf("verify: %v", err)
	}
}
