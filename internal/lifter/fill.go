package lifter

import (
	"fmt"

	"wytiwyg/internal/extdb"
	"wytiwyg/internal/ir"
	"wytiwyg/internal/isa"
	"wytiwyg/internal/tracer"
)

// fillBlock lifts the instructions of one machine block.
func (l *fnLift) fillBlock(start uint32) error {
	b := l.blocks[start]
	if b == nil || l.filled[b] {
		return nil
	}
	mb := l.cfg.Blocks[start]
	pc := start
	for {
		in, err := l.img.InstrAt(pc)
		if err != nil {
			return err
		}
		if in.Op.IsControl() {
			if err := l.liftControl(b, mb, pc, in); err != nil {
				return fmt.Errorf("at 0x%x (%s): %w", pc, in, err)
			}
			break
		}
		if err := l.liftPlain(b, pc, in); err != nil {
			return fmt.Errorf("at 0x%x (%s): %w", pc, in, err)
		}
		if pc == mb.End {
			// Fall through into the next block.
			succ := l.blocks[mb.Succs[0]]
			l.link(b, succ)
			l.emit(b, ir.OpJmp)
			break
		}
		pc += isa.InstrSize
	}
	l.filled[b] = true
	return nil
}

var binOpFor = map[isa.Op]ir.Op{
	isa.ADD: ir.OpAdd, isa.SUB: ir.OpSub, isa.AND: ir.OpAnd, isa.OR: ir.OpOr,
	isa.XOR: ir.OpXor, isa.SHL: ir.OpShl, isa.SHR: ir.OpShr, isa.SAR: ir.OpSar,
	isa.MUL: ir.OpMul, isa.DIV: ir.OpDiv, isa.MOD: ir.OpMod,
}

// liftPlain lowers a non-control instruction.
func (l *fnLift) liftPlain(b *ir.Block, pc uint32, in *isa.Instr) error {
	fs := l.flags[b]
	switch {
	case in.Op == isa.NOP:

	case in.Op == isa.MOV:
		l.writeVar(b, in.Dst, l.readVar(b, in.Src))
	case in.Op == isa.MOVI:
		l.writeVar(b, in.Dst, l.konst(b, in.Imm))
	case in.Op == isa.MOVLO8:
		old := l.readVar(b, in.Dst)
		src := l.readVar(b, in.Src)
		l.writeVar(b, in.Dst, l.emit(b, ir.OpSubreg8, old, src))
	case in.Op == isa.LOAD:
		a := l.addr(b, in.Mem)
		v := l.emit(b, ir.OpLoad, a)
		v.Size = in.Size
		v.Signed = in.Signed
		l.writeVar(b, in.Dst, v)
	case in.Op == isa.LOADLO8:
		a := l.addr(b, in.Mem)
		v := l.emit(b, ir.OpLoad, a)
		v.Size = 1
		old := l.readVar(b, in.Dst)
		l.writeVar(b, in.Dst, l.emit(b, ir.OpSubreg8, old, v))
	case in.Op == isa.STORE:
		a := l.addr(b, in.Mem)
		st := l.emit(b, ir.OpStore, a, l.readVar(b, in.Src))
		st.Size = in.Size
	case in.Op == isa.STOREI:
		a := l.addr(b, in.Mem)
		st := l.emit(b, ir.OpStore, a, l.konst(b, in.Imm))
		st.Size = in.Size
	case in.Op == isa.LEA:
		l.writeVar(b, in.Dst, l.addr(b, in.Mem))

	case in.Op.IsBinOpReg():
		op := binOpFor[in.Op]
		l.writeVar(b, in.Dst, l.emit(b, op, l.readVar(b, in.Dst), l.readVar(b, in.Src)))
	case in.Op.IsBinOpImm():
		op := binOpFor[in.Op.RegForm()]
		l.writeVar(b, in.Dst, l.emit(b, op, l.readVar(b, in.Dst), l.konst(b, in.Imm)))
	case in.Op == isa.NEG:
		l.writeVar(b, in.Dst, l.emit(b, ir.OpNeg, l.readVar(b, in.Dst)))
	case in.Op == isa.NOT:
		l.writeVar(b, in.Dst, l.emit(b, ir.OpNot, l.readVar(b, in.Dst)))

	case in.Op == isa.CMP:
		*fs = flagState{valid: true, a: l.readVar(b, in.Dst), b: l.readVar(b, in.Src)}
	case in.Op == isa.CMPI:
		*fs = flagState{valid: true, a: l.readVar(b, in.Dst), b: l.konst(b, in.Imm)}
	case in.Op == isa.TEST:
		*fs = flagState{valid: true, isTest: true, a: l.readVar(b, in.Dst), b: l.readVar(b, in.Src)}
	case in.Op == isa.SET:
		v, err := l.condValue(b, in.Cond)
		if err != nil {
			return err
		}
		l.writeVar(b, in.Dst, v)

	case in.Op == isa.PUSH, in.Op == isa.PUSHI:
		sp := l.readVar(b, isa.ESP)
		nsp := l.emit(b, ir.OpSub, sp, l.konst(b, 4))
		l.writeVar(b, isa.ESP, nsp)
		var v *ir.Value
		if in.Op == isa.PUSH {
			v = l.readVar(b, in.Src)
		} else {
			v = l.konst(b, in.Imm)
		}
		st := l.emit(b, ir.OpStore, nsp, v)
		st.Size = 4
	case in.Op == isa.POP:
		sp := l.readVar(b, isa.ESP)
		v := l.emit(b, ir.OpLoad, sp)
		v.Size = 4
		l.writeVar(b, in.Dst, v)
		l.writeVar(b, isa.ESP, l.emit(b, ir.OpAdd, sp, l.konst(b, 4)))

	case in.Op == isa.SYS:
		if in.Imm != 0 {
			return fmt.Errorf("unsupported syscall %d", in.Imm)
		}
		// exit(eax): lifted like HALT but as a plain instruction is not
		// expected; handled in liftControl.
		return fmt.Errorf("sys must terminate a block")

	default:
		return fmt.Errorf("unsupported op %s", in.Op)
	}
	return nil
}

// regArgs reads the full register file as call arguments.
func (l *fnLift) regArgs(b *ir.Block) []*ir.Value {
	args := make([]*ir.Value, isa.NumRegs)
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		args[r] = l.readVar(b, r)
	}
	return args
}

// writeRegResults spreads a register-file tuple back into the virtual
// registers.
func (l *fnLift) writeRegResults(b *ir.Block, call *ir.Value) {
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		ex := l.emit(b, ir.OpExtract, call)
		ex.Idx = int(r)
		l.writeVar(b, r, ex)
	}
}

// succBlockOrTrap maps a machine successor address to its IR block, or the
// trap block when the address was never traced as part of this function.
func (l *fnLift) succBlockOrTrap(addr uint32, observed []uint32) *ir.Block {
	for _, s := range observed {
		if s == addr {
			if blk := l.blocks[addr]; blk != nil {
				return blk
			}
		}
	}
	return l.trap()
}

// liftControl lowers a block-terminating instruction.
func (l *fnLift) liftControl(b *ir.Block, mb *tracer.Block, pc uint32, in *isa.Instr) error {
	switch in.Op {
	case isa.JMP, isa.JMPR:
		if l.cfg.TailJumps[pc] {
			return l.liftTailJump(b, mb, pc, in)
		}
		if in.Op == isa.JMP {
			t := l.blocks[uint32(in.Imm)]
			if t == nil {
				return fmt.Errorf("jump target 0x%x not in function", uint32(in.Imm))
			}
			l.link(b, t)
			l.emit(b, ir.OpJmp)
			return nil
		}
		// Indirect jump (jump table): switch over the observed targets.
		v := l.readVar(b, in.Src)
		sw := l.f.NewValue(ir.OpSwitch, v)
		for _, t := range mb.Succs {
			tb := l.blocks[t]
			if tb == nil {
				return fmt.Errorf("indirect jump target 0x%x not in function", t)
			}
			sw.Cases = append(sw.Cases, ir.SwitchCase{Val: t})
			l.link(b, tb)
		}
		l.link(b, l.trap())
		b.Append(sw)
		return nil

	case isa.JCC:
		cond, err := l.condValue(b, in.Cond)
		if err != nil {
			return err
		}
		taken := uint32(in.Imm)
		fall := pc + isa.InstrSize
		tb := l.succBlockOrTrap(taken, mb.Succs)
		fb := l.succBlockOrTrap(fall, mb.Succs)
		if tb == fb {
			l.link(b, tb)
			l.emit(b, ir.OpJmp)
			return nil
		}
		l.link(b, tb)
		l.link(b, fb)
		l.emit(b, ir.OpBr, cond)
		return nil

	case isa.CALL:
		target := uint32(in.Imm)
		if isa.IsExtAddr(target) {
			return l.liftExtCall(b, mb, pc, target)
		}
		callee := l.mod.FuncAt(target)
		if callee == nil {
			return fmt.Errorf("call target 0x%x not a recovered function", target)
		}
		l.liftInternalCall(b, pc, callee, nil)
		return l.callFallthrough(b, mb)

	case isa.CALLR:
		// Indirect call: dispatch on the original target address.
		tv := l.readVar(b, in.Src)
		sp := l.readVar(b, isa.ESP)
		nsp := l.emit(b, ir.OpSub, sp, l.konst(b, 4))
		l.writeVar(b, isa.ESP, nsp)
		st := l.emit(b, ir.OpStore, nsp, l.konst(b, int32(pc+isa.InstrSize)))
		st.Size = 4
		call := l.f.NewValue(ir.OpCallInd, append([]*ir.Value{tv}, l.regArgs(b)...)...)
		call.NumRet = isa.NumRegs
		for _, t := range tracer.Targets(l.cfg.Trace.CallTargets, pc) {
			callee := l.mod.FuncAt(t)
			if callee == nil {
				return fmt.Errorf("indirect call target 0x%x not recovered", t)
			}
			call.Targets = append(call.Targets, callee)
		}
		b.Append(call)
		l.writeRegResults(b, call)
		return l.callFallthrough(b, mb)

	case isa.RET:
		sp := l.readVar(b, isa.ESP)
		l.writeVar(b, isa.ESP, l.emit(b, ir.OpAdd, sp, l.konst(b, 4)))
		ret := l.f.NewValue(ir.OpRet, l.regArgs(b)...)
		b.Append(ret)
		return nil

	case isa.HALT:
		ext := l.f.NewValue(ir.OpCallExt, l.readVar(b, isa.EAX))
		ext.Sym = "exit"
		ext.NumRet = 1
		b.Append(ext)
		b.Append(l.f.NewValue(ir.OpTrap))
		return nil

	case isa.SYS:
		if in.Imm != 0 {
			return fmt.Errorf("unsupported syscall %d", in.Imm)
		}
		ext := l.f.NewValue(ir.OpCallExt, l.readVar(b, isa.EAX))
		ext.Sym = "exit"
		ext.NumRet = 1
		b.Append(ext)
		b.Append(l.f.NewValue(ir.OpTrap))
		return nil
	}
	return fmt.Errorf("unsupported control op %s", in.Op)
}

// liftInternalCall emits the push-return-address + call + result spreading
// sequence. If args is non-nil it is used instead of the current register
// file (tail-call stubs pass pre-read registers).
func (l *fnLift) liftInternalCall(b *ir.Block, pc uint32, callee *ir.Func, args []*ir.Value) *ir.Value {
	sp := l.readVar(b, isa.ESP)
	nsp := l.emit(b, ir.OpSub, sp, l.konst(b, 4))
	l.writeVar(b, isa.ESP, nsp)
	st := l.emit(b, ir.OpStore, nsp, l.konst(b, int32(pc+isa.InstrSize)))
	st.Size = 4
	if args == nil {
		args = l.regArgs(b)
	} else {
		args[isa.ESP] = nsp
	}
	call := l.f.NewValue(ir.OpCall, args...)
	call.Callee = callee
	call.NumRet = isa.NumRegs
	b.Append(call)
	l.writeRegResults(b, call)
	return call
}

func (l *fnLift) callFallthrough(b *ir.Block, mb *tracer.Block) error {
	if len(mb.Succs) == 0 {
		// The call never returned in any trace (e.g. it exits).
		b.Append(l.f.NewValue(ir.OpTrap))
		return nil
	}
	succ := l.blocks[mb.Succs[0]]
	if succ == nil {
		return fmt.Errorf("call return site 0x%x not in function", mb.Succs[0])
	}
	l.link(b, succ)
	l.emit(b, ir.OpJmp)
	return nil
}

// liftExtCall lowers a call to a library function. Known fixed signatures
// get explicit arguments loaded from the emulated stack; variadic functions
// keep the raw stack-switching form until the varargs refinement.
func (l *fnLift) liftExtCall(b *ir.Block, mb *tracer.Block, pc uint32, target uint32) error {
	name, ok := l.img.ExtName(target)
	if !ok {
		return fmt.Errorf("unknown external 0x%x", target)
	}
	sig, ok := extdb.Lookup(name)
	if !ok {
		return fmt.Errorf("external %q not in database", name)
	}
	sp := l.readVar(b, isa.ESP)
	var call *ir.Value
	if sig.Variadic {
		call = l.f.NewValue(ir.OpCallExtRaw, sp)
	} else {
		args := make([]*ir.Value, sig.Params)
		for i := 0; i < sig.Params; i++ {
			a := sp
			if i > 0 {
				a = l.emit(b, ir.OpAdd, sp, l.konst(b, int32(4*i)))
			}
			ld := l.emit(b, ir.OpLoad, a)
			ld.Size = 4
			args[i] = ld
		}
		call = l.f.NewValue(ir.OpCallExt, args...)
	}
	call.Sym = name
	call.NumRet = 1
	b.Append(call)
	ex := l.emit(b, ir.OpExtract, call)
	ex.Idx = 0
	l.writeVar(b, isa.EAX, ex)
	return l.callFallthrough(b, mb)
}

// liftTailJump lowers a jump classified as a tail call: call the target
// with the current registers (the return address of our own caller is
// already on the emulated stack) and return its results.
func (l *fnLift) liftTailJump(b *ir.Block, mb *tracer.Block, pc uint32, in *isa.Instr) error {
	if in.Op == isa.JMP {
		callee := l.mod.FuncAt(uint32(in.Imm))
		if callee == nil {
			return fmt.Errorf("tail-call target 0x%x not recovered", uint32(in.Imm))
		}
		call := l.f.NewValue(ir.OpCall, l.regArgs(b)...)
		call.Callee = callee
		call.NumRet = isa.NumRegs
		b.Append(call)
		rets := make([]*ir.Value, isa.NumRegs)
		for r := 0; r < isa.NumRegs; r++ {
			ex := l.emit(b, ir.OpExtract, call)
			ex.Idx = r
			rets[r] = ex
		}
		b.Append(l.f.NewValue(ir.OpRet, rets...))
		return nil
	}
	// Indirect tail jump: switch to per-target stubs.
	tv := l.readVar(b, in.Src)
	args := l.regArgs(b)
	sw := l.f.NewValue(ir.OpSwitch, tv)
	var stubs []*ir.Block
	for _, t := range mb.Succs {
		callee := l.mod.FuncAt(t)
		if callee == nil {
			return fmt.Errorf("indirect tail-call target 0x%x not recovered", t)
		}
		stub := l.f.NewBlock(0)
		l.sealed[stub] = true
		l.filled[stub] = true
		call := l.f.NewValue(ir.OpCall, args...)
		call.Callee = callee
		call.NumRet = isa.NumRegs
		stub.Append(call)
		rets := make([]*ir.Value, isa.NumRegs)
		for r := 0; r < isa.NumRegs; r++ {
			ex := l.f.NewValue(ir.OpExtract, call)
			ex.Idx = r
			stub.Append(ex)
			rets[r] = ex
		}
		stub.Append(l.f.NewValue(ir.OpRet, rets...))
		sw.Cases = append(sw.Cases, ir.SwitchCase{Val: t})
		stubs = append(stubs, stub)
	}
	for _, s := range stubs {
		l.link(b, s)
	}
	l.link(b, l.trap())
	b.Append(sw)
	return nil
}
