// Package lifter translates traced machine code into the compiler-level IR,
// the analogue of BinRec's RevGen-based LLVM translator (§2.1 and §5 of the
// paper). The lifted program has the BinRec shape the refinements start
// from:
//
//   - every lifted function takes the full register file as parameters and
//     returns the full register file (nothing is known yet about arguments
//     or saved registers);
//   - the original program's stack lives in emulated memory addressed
//     through the virtual ESP (the emulated stack of Figure 1);
//   - calls push a return-address constant and callees pop it, preserving
//     the original frame layout byte for byte;
//   - calls to known external functions are lifted with explicit arguments
//     loaded from the emulated stack; variadic externals use the raw
//     stack-switching form (OpCallExtRaw) until the varargs refinement
//     recovers their call-site signatures;
//   - paths never observed during tracing end in traps (what you trace is
//     what you get).
package lifter

import (
	"fmt"

	"wytiwyg/internal/funcrec"
	"wytiwyg/internal/ir"
	"wytiwyg/internal/isa"
	"wytiwyg/internal/obj"
	"wytiwyg/internal/par"
	"wytiwyg/internal/tracer"
)

// EmuStackSize is the size of the emulated-stack region in recompiled
// binaries.
const EmuStackSize = 1 << 20

// Lift translates every recovered function.
func Lift(img *obj.Image, cfg *tracer.CFG, rec *funcrec.Result) (*ir.Module, error) {
	return LiftJobs(img, cfg, rec, 1)
}

// LiftJobs is Lift over a bounded worker pool: function skeletons are
// created sequentially in recovery order (which fixes the module's print
// order and call-target identity), then each function body is lifted in
// parallel. A fnLift only reads the shared CFG/recovery maps and writes
// its own function — value IDs are per function — so the lifted module is
// byte-identical at every worker count.
func LiftJobs(img *obj.Image, cfg *tracer.CFG, rec *funcrec.Result, jobs int) (*ir.Module, error) {
	mod := ir.NewModule(img.Name)
	mod.Data = img.Data
	mod.EmuStackSize = EmuStackSize
	// Create all functions first so calls can reference them.
	for _, mf := range rec.Funcs {
		mod.NewFunc(mf.Name, mf.Entry)
	}
	err := par.ForEach(jobs, len(rec.Funcs), func(i int) error {
		mf := rec.Funcs[i]
		fl := &fnLift{
			img: img, cfg: cfg, rec: rec, mod: mod,
			mf: mf, f: mod.FuncAt(mf.Entry),
		}
		if err := fl.lift(); err != nil {
			return fmt.Errorf("lifter: %s: %w", mf.Name, err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	mod.Entry = mod.FuncAt(img.Entry)
	if mod.Entry == nil {
		return nil, fmt.Errorf("lifter: entry function not lifted")
	}
	if err := ir.Verify(mod); err != nil {
		return nil, err
	}
	return mod, nil
}

type flagState struct {
	valid  bool
	isTest bool
	a, b   *ir.Value
}

type fnLift struct {
	img *obj.Image
	cfg *tracer.CFG
	rec *funcrec.Result
	mod *ir.Module
	mf  *funcrec.Function
	f   *ir.Func

	blocks     map[uint32]*ir.Block
	mpreds     map[uint32][]uint32
	defs       map[*ir.Block]*[isa.NumRegs]*ir.Value
	flags      map[*ir.Block]*flagState
	sealed     map[*ir.Block]bool
	filled     map[*ir.Block]bool
	incomplete map[*ir.Block]map[isa.Reg]*ir.Value
	trapBlk    *ir.Block
}

func (l *fnLift) lift() error {
	l.f.NumRet = isa.NumRegs
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		l.f.NewParam(r, r.String())
		l.f.RetRegs = append(l.f.RetRegs, r)
	}
	l.blocks = make(map[uint32]*ir.Block)
	l.mpreds = make(map[uint32][]uint32)
	l.defs = make(map[*ir.Block]*[isa.NumRegs]*ir.Value)
	l.flags = make(map[*ir.Block]*flagState)
	l.sealed = make(map[*ir.Block]bool)
	l.filled = make(map[*ir.Block]bool)
	l.incomplete = make(map[*ir.Block]map[isa.Reg]*ir.Value)

	// Synthetic entry: params live here; it jumps to the machine entry
	// block (which may be a loop target and so can have predecessors).
	entry := l.f.NewBlock(0)
	l.defs[entry] = new([isa.NumRegs]*ir.Value)
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		l.defs[entry][r] = l.f.Params[r]
	}
	l.sealed[entry] = true
	l.filled[entry] = true

	for _, a := range l.mf.Blocks {
		b := l.f.NewBlock(a)
		l.blocks[a] = b
		l.defs[b] = new([isa.NumRegs]*ir.Value)
		l.flags[b] = &flagState{}
	}
	// Machine-level predecessor edges (intra-procedural only).
	for _, a := range l.mf.Blocks {
		mb := l.cfg.Blocks[a]
		if l.cfg.TailJumps[mb.End] {
			continue
		}
		for _, s := range mb.Succs {
			if l.rec.Owner[s] == l.mf {
				l.mpreds[s] = append(l.mpreds[s], a)
			}
		}
	}
	l.mpreds[l.mf.Entry] = append(l.mpreds[l.mf.Entry], 0) // synthetic entry edge
	l.link(entry, l.blocks[l.mf.Entry])
	entry.Append(l.f.NewValue(ir.OpJmp))

	// Fill in reverse post order; seal once every predecessor is filled.
	order := l.rpo()
	l.trySeal()
	for _, a := range order {
		if err := l.fillBlock(a); err != nil {
			return err
		}
		l.trySeal()
	}
	// Any block never sealed indicates an unfilled predecessor (should not
	// happen: rpo covers the body).
	for _, b := range l.f.Blocks {
		if !l.sealed[b] {
			return fmt.Errorf("block at 0x%x never sealed", b.Addr)
		}
	}
	l.fixPhiOrder()
	return nil
}

// fixPhiOrder permutes phi arguments from machine-predecessor order (the
// order SSA construction used) into the order of each block's IR Preds list
// (the order the interpreter and later passes rely on).
func (l *fnLift) fixPhiOrder() {
	for _, b := range l.f.Blocks {
		if len(b.Phis) == 0 {
			continue
		}
		mp := l.predBlocks(b)
		perm := make([]int, len(b.Preds))
		for i, p := range b.Preds {
			perm[i] = -1
			for j, q := range mp {
				if q == p {
					perm[i] = j
					break
				}
			}
		}
		for _, phi := range b.Phis {
			old := phi.Args
			args := make([]*ir.Value, len(b.Preds))
			for i, j := range perm {
				if j >= 0 && j < len(old) {
					args[i] = old[j]
				}
			}
			phi.Args = args
		}
	}
}

// rpo orders the machine blocks of the function in reverse post order over
// intra-procedural edges.
func (l *fnLift) rpo() []uint32 {
	visited := map[uint32]bool{}
	var order []uint32
	var dfs func(a uint32)
	dfs = func(a uint32) {
		if visited[a] || l.blocks[a] == nil {
			return
		}
		visited[a] = true
		mb := l.cfg.Blocks[a]
		if !l.cfg.TailJumps[mb.End] {
			for _, s := range mb.Succs {
				if l.rec.Owner[s] == l.mf {
					dfs(s)
				}
			}
		}
		order = append(order, a)
	}
	dfs(l.mf.Entry)
	// Include any stragglers (unreachable bodies should not exist, but be
	// safe).
	for _, a := range l.mf.Blocks {
		dfs(a)
	}
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

func (l *fnLift) trySeal() {
	// Iterate the function's block list, not the address map: sealing can
	// allocate values (transitive phis), so the order must be deterministic
	// for value numbering to be reproducible across runs.
	for _, a := range l.mf.Blocks {
		b := l.blocks[a]
		if l.sealed[b] {
			continue
		}
		ok := true
		for _, p := range l.mpreds[a] {
			var pb *ir.Block
			if p == 0 {
				pb = l.f.Blocks[0]
			} else {
				pb = l.blocks[p]
			}
			if !l.filled[pb] {
				ok = false
				break
			}
		}
		if ok {
			l.seal(b)
		}
	}
}

func (l *fnLift) predBlocks(b *ir.Block) []*ir.Block {
	var out []*ir.Block
	for _, p := range l.mpreds[b.Addr] {
		if p == 0 {
			out = append(out, l.f.Blocks[0])
		} else {
			out = append(out, l.blocks[p])
		}
	}
	return out
}

func (l *fnLift) seal(b *ir.Block) {
	// Complete pending phis in register order (not map order): operand
	// lookup can allocate values recursively, and value numbering must not
	// depend on map iteration.
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if phi, ok := l.incomplete[b][r]; ok {
			l.addPhiOperands(b, r, phi)
		}
	}
	delete(l.incomplete, b)
	l.sealed[b] = true
}

func (l *fnLift) writeVar(b *ir.Block, r isa.Reg, v *ir.Value) {
	l.defs[b][r] = v
}

func (l *fnLift) readVar(b *ir.Block, r isa.Reg) *ir.Value {
	if v := l.defs[b][r]; v != nil {
		return v
	}
	return l.readVarRecursive(b, r)
}

func (l *fnLift) readVarRecursive(b *ir.Block, r isa.Reg) *ir.Value {
	var v *ir.Value
	preds := l.predBlocks(b)
	switch {
	case !l.sealed[b]:
		v = l.f.NewValue(ir.OpPhi)
		v.RegHint = r
		b.AddPhi(v)
		if l.incomplete[b] == nil {
			l.incomplete[b] = make(map[isa.Reg]*ir.Value)
		}
		l.incomplete[b][r] = v
	case len(preds) == 1:
		v = l.readVar(preds[0], r)
	case len(preds) == 0:
		// Unreachable read; only the synthetic entry has no preds and it is
		// prefilled with params.
		panic(fmt.Sprintf("lifter: read of %s in block with no predecessors", r))
	default:
		v = l.f.NewValue(ir.OpPhi)
		v.RegHint = r
		b.AddPhi(v)
		l.writeVar(b, r, v) // break cycles
		l.addPhiOperands(b, r, v)
	}
	l.writeVar(b, r, v)
	return v
}

func (l *fnLift) addPhiOperands(b *ir.Block, r isa.Reg, phi *ir.Value) {
	for _, p := range l.predBlocks(b) {
		phi.AddArg(l.readVar(p, r))
	}
}

// link adds a CFG edge. Successor slots may repeat (switch cases sharing a
// target); predecessor lists are kept duplicate-free so that phi arguments
// map one-to-one onto them.
func (l *fnLift) link(from, to *ir.Block) {
	from.Succs = append(from.Succs, to)
	for _, p := range to.Preds {
		if p == from {
			return
		}
	}
	to.Preds = append(to.Preds, from)
}

// trap returns the function's shared trap block.
func (l *fnLift) trap() *ir.Block {
	if l.trapBlk == nil {
		l.trapBlk = l.f.NewBlock(0)
		l.trapBlk.Append(l.f.NewValue(ir.OpTrap))
		l.sealed[l.trapBlk] = true
		l.filled[l.trapBlk] = true
	}
	return l.trapBlk
}

func (l *fnLift) konst(b *ir.Block, v int32) *ir.Value {
	c := l.f.NewValue(ir.OpConst)
	c.Const = v
	b.Append(c)
	return c
}

func (l *fnLift) emit(b *ir.Block, op ir.Op, args ...*ir.Value) *ir.Value {
	v := l.f.NewValue(op, args...)
	b.Append(v)
	return v
}

// addr lowers a memory operand to an address value. The constant
// displacement folds into the base FIRST, so that base+disp forms the
// direct stack reference (the paper's "%ebp-44" in -44(%ebp,%eax,8)) and
// the scaled index derives from it dynamically.
func (l *fnLift) addr(b *ir.Block, m isa.MemRef) *ir.Value {
	var v *ir.Value
	if m.HasBase() {
		v = l.readVar(b, m.Base)
		if m.Disp != 0 {
			v = l.emit(b, ir.OpAdd, v, l.konst(b, m.Disp))
		}
	}
	if m.HasIndex() {
		idx := l.readVar(b, m.Index)
		if m.Scale > 1 {
			idx = l.emit(b, ir.OpMul, idx, l.konst(b, int32(m.Scale)))
		}
		if v == nil {
			v = idx
			if m.Disp != 0 {
				v = l.emit(b, ir.OpAdd, v, l.konst(b, m.Disp))
			}
		} else {
			v = l.emit(b, ir.OpAdd, v, idx)
		}
	}
	if v == nil {
		return l.konst(b, m.Disp)
	}
	return v
}

// condValue materializes the current flags as a 0/1 value under cond.
func (l *fnLift) condValue(b *ir.Block, cond isa.Cond) (*ir.Value, error) {
	fs := l.flags[b]
	if fs == nil || !fs.valid {
		return nil, fmt.Errorf("condition used without flags set in block 0x%x", b.Addr)
	}
	a, bb := fs.a, fs.b
	if fs.isTest {
		a = l.emit(b, ir.OpAnd, a, bb)
		bb = l.konst(b, 0)
	}
	v := l.emit(b, ir.OpCmp, a, bb)
	v.Cond = cond
	return v, nil
}
