// Package profiling wires the standard runtime/pprof profiles into the
// command-line tools. The interpreter and emulator hot paths are tuned
// against these profiles; see ARCHITECTURE.md ("Performance model") for how
// to read the output.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling (if cpuPath is non-empty) and returns a stop
// function that finishes the CPU profile and, if memPath is non-empty,
// writes a heap profile. Either path may be empty; the stop function must be
// called exactly once, normally via defer in main.
func Start(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
			}
		}
	}, nil
}
