package codegen

import (
	"sort"

	"wytiwyg/internal/ir"
	"wytiwyg/internal/isa"
)

// Register allocation: liveness-based linear scan over the callee-saved
// registers EBX/ESI/EDI (which survive calls under the recompiled
// convention); everything else spills to frame slots. Constants
// rematerialize at use; allocas are frame addresses.

// splitCriticalEdges inserts a forwarding block on every edge from a
// multi-successor block into a multi-predecessor block, so phi copies have
// an unambiguous insertion point.
func splitCriticalEdges(f *ir.Func) {
	for _, b := range append([]*ir.Block(nil), f.Blocks...) {
		if len(b.Succs) < 2 {
			continue
		}
		for si, s := range b.Succs {
			if len(s.Preds) < 2 || len(s.Phis) == 0 {
				continue
			}
			nb := f.NewBlock(0)
			j := f.NewValue(ir.OpJmp)
			nb.Append(j)
			nb.Preds = []*ir.Block{b}
			nb.Succs = []*ir.Block{s}
			b.Succs[si] = nb
			for pi, p := range s.Preds {
				if p == b {
					s.Preds[pi] = nb
					break
				}
			}
		}
	}
}

// linearize returns blocks in reverse post order.
func linearize(f *ir.Func) []*ir.Block {
	seen := map[*ir.Block]bool{}
	var order []*ir.Block
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			dfs(s)
		}
		order = append(order, b)
	}
	dfs(f.Entry())
	for _, b := range f.Blocks {
		dfs(b)
	}
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

var allocRegs = [3]isa.Reg{isa.EBX, isa.ESI, isa.EDI}

// assignHomes performs liveness analysis and linear-scan allocation.
func (c *fnCG) assignHomes() {
	f := c.f
	c.homes = make(map[*ir.Value]home)
	c.callExtracts = make(map[*ir.Value][]*ir.Value)

	// Allocas get fixed frame offsets.
	var aoff int32
	for _, b := range f.Blocks {
		for _, v := range b.Insts {
			if v.Op != ir.OpAlloca {
				continue
			}
			size := (int32(v.AllocSize) + 3) &^ 3
			c.homes[v] = home{frameAddr: true, allocOff: aoff}
			aoff += size
		}
	}
	c.allocSize = aoff

	// Number the values in linear order.
	idx := map[*ir.Value]int{}
	var seq []*ir.Value
	number := func(v *ir.Value) {
		idx[v] = len(seq)
		seq = append(seq, v)
	}
	blockStart := map[*ir.Block]int{}
	blockEnd := map[*ir.Block]int{}
	for _, p := range f.Params {
		number(p)
	}
	for _, b := range c.order {
		blockStart[b] = len(seq)
		for _, v := range b.Phis {
			number(v)
		}
		for _, v := range b.Insts {
			number(v)
			if v.Op == ir.OpExtract {
				c.callExtracts[v.Args[0]] = append(c.callExtracts[v.Args[0]], v)
			}
		}
		blockEnd[b] = len(seq)
	}

	// Liveness: backward dataflow over blocks; phi args count as live-out
	// of the corresponding predecessor.
	liveIn := map[*ir.Block]map[*ir.Value]bool{}
	liveOut := map[*ir.Block]map[*ir.Value]bool{}
	for _, b := range c.order {
		liveIn[b] = map[*ir.Value]bool{}
		liveOut[b] = map[*ir.Value]bool{}
	}
	interesting := func(v *ir.Value) bool {
		if v == nil {
			return false
		}
		switch v.Op {
		case ir.OpConst, ir.OpAlloca:
			return false // rematerialized / frame address
		}
		return true
	}
	// memOperand folds add(x, const) addresses and expands tiles at the
	// load/store, re-reading their components there: those values are live
	// at the memory operation.
	foldedAddrUses := func(v *ir.Value) []*ir.Value {
		if v.Op != ir.OpLoad && v.Op != ir.OpStore {
			return nil
		}
		a := v.Args[0]
		if t, ok := c.tiles[a]; ok {
			out := []*ir.Value{t.index}
			if t.base != nil {
				out = append(out, t.base)
			}
			return out
		}
		if a.Op == ir.OpAdd && a.Args[1].Op == ir.OpConst {
			return []*ir.Value{a.Args[0]}
		}
		return nil
	}
	for changed := true; changed; {
		changed = false
		for i := len(c.order) - 1; i >= 0; i-- {
			b := c.order[i]
			out := map[*ir.Value]bool{}
			for _, s := range b.Succs {
				for v := range liveIn[s] {
					out[v] = true
				}
				// Phi args for the edge b->s.
				for pi, p := range s.Preds {
					if p != b {
						continue
					}
					for _, phi := range s.Phis {
						if pi < len(phi.Args) && interesting(phi.Args[pi]) {
							out[phi.Args[pi]] = true
						}
					}
				}
			}
			in := map[*ir.Value]bool{}
			for v := range out {
				in[v] = true
			}
			for k := len(b.Insts) - 1; k >= 0; k-- {
				v := b.Insts[k]
				delete(in, v)
				for _, a := range v.Args {
					if interesting(a) {
						in[a] = true
					}
				}
				for _, x := range foldedAddrUses(v) {
					if interesting(x) {
						in[x] = true
					}
				}
			}
			for _, phi := range b.Phis {
				delete(in, phi)
			}
			if len(in) != len(liveIn[b]) || len(out) != len(liveOut[b]) {
				changed = true
			} else {
				for v := range in {
					if !liveIn[b][v] {
						changed = true
						break
					}
				}
			}
			liveIn[b] = in
			liveOut[b] = out
		}
	}

	// Loop depth per block (RPO back-edge ranges), for spill weights.
	posOf := map[*ir.Block]int{}
	for i, b := range c.order {
		posOf[b] = i
	}
	depth := map[*ir.Block]int{}
	for _, latch := range c.order {
		for _, hdr := range latch.Succs {
			if hp, ok := posOf[hdr]; ok && hp <= posOf[latch] {
				for i := hp; i <= posOf[latch]; i++ {
					depth[c.order[i]]++
				}
			}
		}
	}
	blockWeight := func(b *ir.Block) int {
		d := depth[b]
		if d > 3 {
			d = 3
		}
		w := 1
		for i := 0; i < d; i++ {
			w *= 8
		}
		return w
	}

	// Intervals.
	type interval struct {
		v          *ir.Value
		start, end int
		weight     int
	}
	ivs := map[*ir.Value]*interval{}
	touchW := func(v *ir.Value, at, w int) {
		if !interesting(v) {
			return
		}
		iv := ivs[v]
		if iv == nil {
			iv = &interval{v: v, start: at, end: at}
			ivs[v] = iv
		}
		if at < iv.start {
			iv.start = at
		}
		if at > iv.end {
			iv.end = at
		}
		iv.weight += w
	}
	touch := func(v *ir.Value, at int) { touchW(v, at, 1) }
	for _, p := range f.Params {
		touch(p, idx[p])
	}
	for _, b := range c.order {
		w := blockWeight(b)
		for _, phi := range b.Phis {
			touchW(phi, idx[phi], w)
		}
		for _, v := range b.Insts {
			if interesting(v) && v.Op.HasResult() {
				touchW(v, idx[v], w)
			}
			for _, a := range v.Args {
				touchW(a, idx[v], w)
			}
			for _, x := range foldedAddrUses(v) {
				touchW(x, idx[v], w)
			}
		}
		// Live-range extension across block boundaries (no weight: mere
		// liveness).
		for v := range liveIn[b] {
			touch(v, blockStart[b])
		}
		for v := range liveOut[b] {
			touch(v, blockEnd[b])
		}
	}

	// Phi-web coalescing: a phi and its arguments share one home when
	// their live intervals do not overlap (the common loop-carried
	// pattern: i / i+1). This turns edge copies into no-ops and lets
	// two-address ALU ops compute in place.
	web := map[*ir.Value]*ir.Value{}
	var findWeb func(v *ir.Value) *ir.Value
	findWeb = func(v *ir.Value) *ir.Value {
		if web[v] == nil || web[v] == v {
			web[v] = v
			return v
		}
		r := findWeb(web[v])
		web[v] = r
		return r
	}
	webIv := map[*ir.Value]*interval{}
	ivOf := func(v *ir.Value) *interval {
		r := findWeb(v)
		if wiv := webIv[r]; wiv != nil {
			return wiv
		}
		return ivs[r]
	}
	for _, b := range c.order {
		if c.g.opts.NoCoalesce {
			break
		}
		for _, phi := range b.Phis {
			if ivs[phi] == nil {
				continue
			}
			for _, a := range phi.Args {
				if !interesting(a) || a.Op == ir.OpParam || ivs[a] == nil {
					continue
				}
				ra, rp := findWeb(a), findWeb(phi)
				if ra == rp {
					continue
				}
				ia, ip2 := ivOf(a), ivOf(phi)
				if ia == nil || ip2 == nil {
					continue
				}
				// Disjoint (touching endpoints allowed): safe to share.
				if ia.end <= ip2.start || ip2.end <= ia.start {
					merged := &interval{
						v:      rp,
						start:  min(ia.start, ip2.start),
						end:    max(ia.end, ip2.end),
						weight: ia.weight + ip2.weight,
					}
					web[ra] = rp
					webIv[rp] = merged
				}
			}
		}
	}
	// Collapse webs: every member maps to its root's interval.
	rootIvs := map[*ir.Value]*interval{}
	members := map[*ir.Value][]*ir.Value{}
	for v, iv := range ivs {
		r := findWeb(v)
		members[r] = append(members[r], v)
		if wiv := webIv[r]; wiv != nil {
			rootIvs[r] = wiv
		} else if v == r {
			rootIvs[r] = iv
		}
	}
	for r := range members {
		if rootIvs[r] == nil {
			rootIvs[r] = ivs[r]
		}
	}

	// Linear scan, preferring hot (high-weight) values.
	var list []*interval
	for r, iv := range rootIvs {
		if iv == nil {
			continue
		}
		iv.v = r
		list = append(list, iv)
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].start != list[j].start {
			return list[i].start < list[j].start
		}
		return idx[list[i].v] < idx[list[j].v]
	})
	type active struct {
		iv  *interval
		reg isa.Reg
	}
	var act []active
	free := []isa.Reg{allocRegs[0], allocRegs[1], allocRegs[2]}
	usedReg := map[isa.Reg]bool{}
	expire := func(at int) {
		out := act[:0]
		for _, a := range act {
			if a.iv.end < at {
				free = append(free, a.reg)
			} else {
				out = append(out, a)
			}
		}
		act = out
	}
	for _, iv := range list {
		expire(iv.start)
		// Values that must stay addressable (multi-result extras handled
		// via homes anyway) — everything is eligible.
		if len(free) > 0 {
			r := free[len(free)-1]
			free = free[:len(free)-1]
			act = append(act, active{iv: iv, reg: r})
			c.homes[iv.v] = home{inReg: true, reg: r}
			usedReg[r] = true
			continue
		}
		// Spill the least-weighted of the active set and this one.
		minW := iv.weight
		minAt := -1
		for i, a := range act {
			if a.iv.weight < minW {
				minW = a.iv.weight
				minAt = i
			}
		}
		if minAt >= 0 {
			victim := act[minAt]
			c.homes[victim.iv.v] = home{slot: c.slots}
			c.slots++
			act[minAt] = active{iv: iv, reg: victim.reg}
			c.homes[iv.v] = home{inReg: true, reg: victim.reg}
		} else {
			c.homes[iv.v] = home{slot: c.slots}
			c.slots++
		}
	}
	// Propagate web homes to members.
	for r, ms := range members {
		h, ok := c.homes[r]
		if !ok {
			continue
		}
		for _, m := range ms {
			c.homes[m] = h
		}
	}
	for r := range usedReg {
		c.saved = append(c.saved, r)
	}
	sort.Slice(c.saved, func(i, j int) bool { return c.saved[i] < c.saved[j] })

	// Parameters not register-allocated live in the incoming argument area.
	for i, p := range f.Params {
		h, ok := c.homes[p]
		if ok && h.inReg {
			c.homes[p] = home{inReg: true, reg: h.reg}
			_ = i
			continue
		}
		c.homes[p] = home{param: true, pidx: i}
	}

	// Constants rematerialize.
	for _, b := range f.Blocks {
		for _, v := range b.Insts {
			if v.Op == ir.OpConst {
				c.homes[v] = home{konst: true, cval: v.Const}
			}
		}
	}
	for _, p := range f.Params {
		if p.Op == ir.OpConst { // dropped params became constants
			c.homes[p] = home{konst: true, cval: p.Const}
		}
	}
	// Anything untouched (dead values with side effects, e.g. calls whose
	// results are unused) still needs a home for its result.
	assign := func(v *ir.Value) {
		if _, ok := c.homes[v]; ok {
			return
		}
		if v.Op == ir.OpConst {
			c.homes[v] = home{konst: true, cval: v.Const}
			return
		}
		c.homes[v] = home{slot: c.slots}
		c.slots++
	}
	for _, p := range f.Params {
		assign(p)
	}
	for _, b := range f.Blocks {
		for _, v := range b.Phis {
			assign(v)
		}
		for _, v := range b.Insts {
			if v.Op.HasResult() {
				assign(v)
			}
		}
	}
}
