package codegen

import (
	"fmt"

	"wytiwyg/internal/asm"
	"wytiwyg/internal/ir"
	"wytiwyg/internal/isa"
	"wytiwyg/internal/opt"
)

// Instruction emission. Values move through EAX (primary scratch) and
// ECX/EDX (secondary) between their homes.

var aluFor = map[ir.Op]isa.Op{
	ir.OpAdd: isa.ADD, ir.OpSub: isa.SUB, ir.OpMul: isa.MUL, ir.OpDiv: isa.DIV,
	ir.OpMod: isa.MOD, ir.OpAnd: isa.AND, ir.OpOr: isa.OR, ir.OpXor: isa.XOR,
	ir.OpShl: isa.SHL, ir.OpShr: isa.SHR, ir.OpSar: isa.SAR,
}

// operand materializes v into a register: its home register when it has
// one, otherwise into scratch.
func (c *fnCG) operand(v *ir.Value, scratch isa.Reg) isa.Reg {
	if v == c.eaxCache {
		c.eaxCache = nil
		return isa.EAX
	}
	h, ok := c.homes[v]
	if !ok {
		panic(fmt.Sprintf("codegen: no home for %s(%s)", v, v.Op))
	}
	b := c.b()
	switch {
	case h.inReg:
		return h.reg
	case h.konst:
		b.MovI(scratch, h.cval)
		return scratch
	case h.frameAddr:
		b.Lea(scratch, c.allocaAddr(h.allocOff))
		return scratch
	case h.param:
		b.Load(scratch, c.paramMem(h.pidx), 4, false)
		return scratch
	default:
		b.Load(scratch, c.slotMem(h.slot), 4, false)
		return scratch
	}
}

// intoEAX puts v's value into EAX.
func (c *fnCG) intoEAX(v *ir.Value) {
	r := c.operand(v, isa.EAX)
	if r != isa.EAX {
		c.b().Mov(isa.EAX, r)
	}
}

// store writes srcReg into v's home. Fused values stay in EAX for the next
// instruction instead.
func (c *fnCG) store(v *ir.Value, src isa.Reg) {
	if c.eaxFuse[v] {
		if src != isa.EAX {
			c.b().Mov(isa.EAX, src)
		}
		c.eaxPending = v
		return
	}
	h, ok := c.homes[v]
	if !ok {
		return // result never used anywhere
	}
	b := c.b()
	switch {
	case h.inReg:
		if h.reg != src {
			b.Mov(h.reg, src)
		}
	case h.konst, h.frameAddr:
		// Nothing to store.
	case h.param:
		b.Store(c.paramMem(h.pidx), src, 4)
	default:
		b.Store(c.slotMem(h.slot), src, 4)
	}
}

// memOperand forms an addressing mode for an address value, folding
// alloca+const and base+const shapes. May clobber scratch.
func (c *fnCG) memOperand(addr *ir.Value, scratch isa.Reg) isa.MemRef {
	// A fused address is already sitting in EAX.
	if addr == c.eaxCache {
		c.eaxCache = nil
		return asm.Mem(isa.EAX, 0)
	}
	if t, ok := c.tiles[addr]; ok {
		return c.emitTile(t, scratch)
	}
	h := c.homes[addr]
	if h.frameAddr {
		return c.allocaAddr(h.allocOff)
	}
	if h.konst {
		return asm.MemAbs(uint32(h.cval))
	}
	// Fold add(x, const) into the addressing mode — unless x was fused into
	// the add (then x has no home to re-read; use the add's own value).
	if addr.Op == ir.OpAdd {
		if k := addr.Args[1]; k.Op == ir.OpConst && !c.eaxFuse[addr.Args[0]] {
			inner := c.homes[addr.Args[0]]
			if inner.frameAddr {
				return c.allocaAddr(inner.allocOff + k.Const)
			}
			base := c.operand(addr.Args[0], scratch)
			return asm.Mem(base, k.Const)
		}
	}
	base := c.operand(addr, scratch)
	return asm.Mem(base, 0)
}

// cmpFusable reports whether a compare can fuse into its branch.
func (c *fnCG) cmpFusable(uses opt.Uses, v *ir.Value) bool {
	if v.Op != ir.OpCmp {
		return false
	}
	us := uses[v]
	if len(us) != 1 {
		return false
	}
	u := us[0]
	return u.Op == ir.OpBr && u.Block == v.Block
}

// emitCmp emits CMP setting flags for v's operands.
func (c *fnCG) emitCmp(v *ir.Value) {
	b := c.b()
	a := c.operand(v.Args[0], isa.EAX)
	if k := v.Args[1]; k.Op == ir.OpConst {
		b.CmpI(a, k.Const)
		return
	}
	rb := c.operand(v.Args[1], isa.ECX)
	b.Cmp(a, rb)
}

// emitEdgeCopies performs phi moves for edges where this block is the
// unique side (multi-pred successors; the successor's other preds handle
// their own edges).
func (c *fnCG) emitEdgeCopies(blk *ir.Block) error {
	for _, s := range blk.Succs {
		if len(s.Phis) == 0 || len(s.Preds) < 2 {
			continue
		}
		if len(blk.Succs) != 1 {
			return fmt.Errorf("critical edge b%d->b%d not split", blk.ID, s.ID)
		}
		pi := -1
		for i, p := range s.Preds {
			if p == blk {
				pi = i
				break
			}
		}
		if pi < 0 {
			return fmt.Errorf("edge b%d->b%d missing pred entry", blk.ID, s.ID)
		}
		var dsts, srcs []*ir.Value
		for _, phi := range s.Phis {
			dsts = append(dsts, phi)
			srcs = append(srcs, phi.Args[pi])
		}
		c.parallelMove(dsts, srcs)
	}
	return nil
}

// parallelMove copies srcs into dsts simultaneously: moves whose
// destination is not the home of a pending source go directly; cycles fall
// back to the stack.
func (c *fnCG) parallelMove(dsts, srcs []*ir.Value) {
	type pair struct{ d, s *ir.Value }
	var pending []pair
	for i := range dsts {
		if c.homeKey(dsts[i]) == c.homeKey(srcs[i]) {
			continue // already in place
		}
		pending = append(pending, pair{dsts[i], srcs[i]})
	}
	for len(pending) > 0 {
		emitted := false
		for i, p := range pending {
			dk := c.homeKey(p.d)
			conflict := false
			for j, q := range pending {
				if j != i && c.homeKey(q.s) == dk {
					conflict = true
					break
				}
			}
			if conflict {
				continue
			}
			c.moveValue(p.d, p.s)
			pending = append(pending[:i], pending[i+1:]...)
			emitted = true
			break
		}
		if emitted {
			continue
		}
		// Cycle: rotate through the stack.
		for _, p := range pending {
			r := c.operand(p.s, isa.EAX)
			c.push(r)
		}
		for i := len(pending) - 1; i >= 0; i-- {
			c.pop(isa.ECX)
			c.store(pending[i].d, isa.ECX)
		}
		pending = nil
	}
}

// homeKey identifies a storage location for interference checks.
func (c *fnCG) homeKey(v *ir.Value) string {
	h := c.homes[v]
	switch {
	case h.inReg:
		return "r" + h.reg.String()
	case h.konst:
		return fmt.Sprintf("k%d#%d", h.cval, v.ID) // constants never conflict
	case h.frameAddr:
		return fmt.Sprintf("a%d", h.allocOff)
	case h.param:
		return fmt.Sprintf("p%d", h.pidx)
	default:
		return fmt.Sprintf("s%d", h.slot)
	}
}

// moveValue copies src's value into dst's home.
func (c *fnCG) moveValue(dst, src *ir.Value) {
	hd := c.homes[dst]
	if hd.inReg {
		r := c.operand(src, hd.reg)
		if r != hd.reg {
			c.b().Mov(hd.reg, r)
		}
		return
	}
	r := c.operand(src, isa.EAX)
	c.store(dst, r)
}

// emitHeadCopies handles phis of single-predecessor blocks at block entry.
func (c *fnCG) emitHeadCopies(blk *ir.Block) {
	if len(blk.Preds) != 1 || len(blk.Phis) == 0 {
		return
	}
	var dsts, srcs []*ir.Value
	for _, phi := range blk.Phis {
		dsts = append(dsts, phi)
		srcs = append(srcs, phi.Args[0])
	}
	c.parallelMove(dsts, srcs)
}

func (c *fnCG) emitValue(blk *ir.Block, v *ir.Value, bi int) error {
	b := c.b()
	switch v.Op {
	case ir.OpConst, ir.OpAlloca, ir.OpParam, ir.OpPhi, ir.OpSP0:
		return nil
	case ir.OpExtract:
		return nil // spread at the call site
	}
	if c.skipped[v] {
		return nil // consumed entirely by tiled memory operands
	}
	switch v.Op {

	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpMod, ir.OpAnd, ir.OpOr,
		ir.OpXor, ir.OpShl, ir.OpShr, ir.OpSar:
		op := aluFor[v.Op]
		// Compute directly into the destination register when safe (the
		// second operand must not live there).
		dst := isa.EAX
		if hv := c.homes[v]; hv.inReg {
			if h1 := c.homes[v.Args[1]]; !(h1.inReg && h1.reg == hv.reg) {
				dst = hv.reg
			}
		}
		if r0 := c.operand(v.Args[0], dst); r0 != dst {
			b.Mov(dst, r0)
		}
		if k := v.Args[1]; k.Op == ir.OpConst {
			if (op == isa.DIV || op == isa.MOD) && k.Const == 0 {
				// Fold-resistant division by zero: keep the trap at runtime
				// by dividing by a zero register.
				b.MovI(isa.ECX, 0)
				b.Bin(op, dst, isa.ECX)
			} else {
				b.BinI(op.ImmForm(), dst, k.Const)
			}
		} else {
			rb := c.operand(v.Args[1], isa.ECX)
			b.Bin(op, dst, rb)
		}
		if dst == isa.EAX {
			c.store(v, isa.EAX)
		}

	case ir.OpNeg:
		c.intoEAX(v.Args[0])
		b.Neg(isa.EAX)
		c.store(v, isa.EAX)
	case ir.OpNot:
		c.intoEAX(v.Args[0])
		b.Not(isa.EAX)
		c.store(v, isa.EAX)

	case ir.OpSubreg8:
		c.intoEAX(v.Args[0])
		rb := c.operand(v.Args[1], isa.ECX)
		b.MovLo8(isa.EAX, rb)
		c.store(v, isa.EAX)

	case ir.OpSext:
		c.intoEAX(v.Args[0])
		switch v.Size {
		case 1:
			b.BinI(isa.SHLI, isa.EAX, 24)
			b.BinI(isa.SARI, isa.EAX, 24)
		case 2:
			b.BinI(isa.SHLI, isa.EAX, 16)
			b.BinI(isa.SARI, isa.EAX, 16)
		}
		c.store(v, isa.EAX)
	case ir.OpZext:
		c.intoEAX(v.Args[0])
		switch v.Size {
		case 1:
			b.BinI(isa.ANDI, isa.EAX, 0xFF)
		case 2:
			b.BinI(isa.ANDI, isa.EAX, 0xFFFF)
		}
		c.store(v, isa.EAX)

	case ir.OpCmp:
		if c.fused[v] {
			return nil
		}
		c.emitCmp(v)
		b.Set(v.Cond, isa.EAX)
		c.store(v, isa.EAX)

	case ir.OpLoad:
		m := c.memOperand(v.Args[0], isa.ECX)
		dst := isa.EAX
		if hv := c.homes[v]; hv.inReg {
			dst = hv.reg
		}
		b.Load(dst, m, v.Size, v.Signed)
		if dst == isa.EAX {
			c.store(v, isa.EAX)
		}

	case ir.OpStore:
		m := c.memOperand(v.Args[0], isa.ECX)
		if k := v.Args[1]; k.Op == ir.OpConst {
			b.StoreI(m, k.Const, v.Size)
			return nil
		}
		// The address may be held in EAX (fusion) or ECX (scratch); the
		// value goes through EDX, which neither path touches.
		src := c.operand(v.Args[1], isa.EDX)
		b.Store(m, src, v.Size)

	case ir.OpCall:
		c.emitCall(v, func() { b.Call(fnLabel(v.Callee)) }, v.Args)
	case ir.OpCallInd:
		return c.emitCallInd(v)
	case ir.OpCallExt:
		c.emitCall(v, func() { b.CallExt(v.Sym) }, v.Args)
	case ir.OpCallExtRaw:
		// BinRec stack switching: point the native stack pointer at the
		// emulated argument area for the duration of the call.
		base := c.operand(v.Args[0], isa.ECX)
		b.Mov(isa.EDX, isa.ESP)
		if base != isa.ECX {
			b.Mov(isa.ECX, base)
		}
		b.Mov(isa.ESP, isa.ECX)
		b.CallExt(v.Sym)
		b.Mov(isa.ESP, isa.EDX)
		c.spreadResults(v)

	case ir.OpJmp:
		if bi+1 >= len(c.order) || c.order[bi+1] != blk.Succs[0] {
			b.Jmp(c.blockLbl[blk.Succs[0]])
		}
	case ir.OpBr:
		cond := v.Args[0]
		if cond.Op == ir.OpCmp && c.fused[cond] {
			c.emitCmp(cond)
			b.Jcc(cond.Cond, c.blockLbl[blk.Succs[0]])
		} else {
			r := c.operand(cond, isa.EAX)
			b.CmpI(r, 0)
			b.Jcc(isa.CondNE, c.blockLbl[blk.Succs[0]])
		}
		if bi+1 >= len(c.order) || c.order[bi+1] != blk.Succs[1] {
			b.Jmp(c.blockLbl[blk.Succs[1]])
		}
	case ir.OpSwitch:
		r := c.operand(v.Args[0], isa.EAX)
		if r != isa.EAX {
			b.Mov(isa.EAX, r)
		}
		for i, cs := range v.Cases {
			b.CmpI(isa.EAX, int32(cs.Val))
			b.Jcc(isa.CondEQ, c.blockLbl[blk.Succs[i]])
		}
		b.Jmp(c.blockLbl[blk.Succs[len(v.Cases)]])
	case ir.OpRet:
		for i := 1; i < len(v.Args); i++ {
			r := c.operand(v.Args[i], isa.EAX)
			b.StoreSym("__retbuf", int32(4*i), r, 4)
		}
		if len(v.Args) > 0 {
			c.intoEAX(v.Args[0])
		}
		b.Jmp(c.epilogue)
	case ir.OpTrap:
		c.emitStub()
	default:
		return fmt.Errorf("cannot lower %s", v.Op)
	}
	return nil
}

// emitStub emits a trap stub (exit 254), planting a "__stub$" symbol on it
// so the runtime can attribute the trap to its owning function (the
// stub-hit counter behind the coverage report).
func (c *fnCG) emitStub() {
	b := c.b()
	b.Func(fmt.Sprintf("__stub$%s$%d", c.f.Name, c.stubs))
	c.stubs++
	b.MovI(isa.EAX, 254)
	b.Halt()
}

// emitCall pushes args right-to-left, performs the call, cleans the stack,
// and spreads the results.
func (c *fnCG) emitCall(v *ir.Value, doCall func(), args []*ir.Value) {
	b := c.b()
	for i := len(args) - 1; i >= 0; i-- {
		a := args[i]
		if a.Op == ir.OpConst {
			c.pushI(a.Const)
			continue
		}
		r := c.operand(a, isa.EAX)
		c.push(r)
	}
	doCall()
	if n := int32(4 * len(args)); n > 0 {
		b.BinI(isa.ADDI, isa.ESP, n)
		c.pushDepth -= n
	}
	c.spreadResults(v)
}

// spreadResults copies the call's tuple into the extract homes: result 0
// from EAX, the rest from the return buffer.
func (c *fnCG) spreadResults(v *ir.Value) {
	b := c.b()
	for _, ex := range c.callExtracts[v] {
		if _, ok := c.homes[ex]; !ok {
			continue
		}
		if ex.Idx == 0 {
			c.store(ex, isa.EAX)
		} else {
			b.LoadSym(isa.ECX, "__retbuf", int32(4*ex.Idx), 4, false)
			c.store(ex, isa.ECX)
		}
	}
}

// emitCallInd dispatches on the original target address.
func (c *fnCG) emitCallInd(v *ir.Value) error {
	b := c.b()
	if len(v.Targets) == 0 {
		return fmt.Errorf("indirect call without targets")
	}
	// Target into EDX (survives the pushes).
	t := c.operand(v.Args[0], isa.EDX)
	if t != isa.EDX {
		b.Mov(isa.EDX, t)
	}
	args := v.Args[1:]
	for i := len(args) - 1; i >= 0; i-- {
		a := args[i]
		if a.Op == ir.OpConst {
			c.pushI(a.Const)
			continue
		}
		r := c.operand(a, isa.EAX)
		c.push(r)
	}
	join := c.g.newLabel("icall_join")
	for i, tgt := range v.Targets {
		b.CmpI(isa.EDX, int32(tgt.Addr))
		lbl := c.g.newLabel(fmt.Sprintf("icall_%d", i))
		b.Jcc(isa.CondNE, lbl)
		b.Call(fnLabel(tgt))
		b.Jmp(join)
		b.Label(lbl)
	}
	// Untraced target: trap.
	c.emitStub()
	b.Label(join)
	if n := int32(4 * len(args)); n > 0 {
		b.BinI(isa.ADDI, isa.ESP, n)
		c.pushDepth -= n
	}
	c.spreadResults(v)
	return nil
}
