// Package irgen generates random well-defined IR modules for differential
// testing: value graphs the mini-C compiler would never emit, but that the
// optimizer, the code generator and the static analyses must all handle
// without changing behaviour. Generation is deterministic per seed.
package irgen

import (
	"fmt"
	"math/rand"

	"wytiwyg/internal/ir"
	"wytiwyg/internal/isa"
)

type gen struct {
	r    *rand.Rand
	f    *ir.Func
	b    *ir.Block // current block
	pool []*ir.Value
	// stored offsets within the alloca, for safe loads
	alloca *ir.Value
	stored []int32
}

func (g *gen) konst(c int32) *ir.Value {
	v := g.f.NewValue(ir.OpConst)
	v.Const = c
	g.b.Append(v)
	return v
}

func (g *gen) pick() *ir.Value { return g.pool[g.r.Intn(len(g.pool))] }

// op emits one random well-defined operation over the pool and returns it.
func (g *gen) op() *ir.Value {
	f, b := g.f, g.b
	switch g.r.Intn(12) {
	case 0, 1, 2: // plain binary ALU
		ops := []ir.Op{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor}
		v := f.NewValue(ops[g.r.Intn(len(ops))], g.pick(), g.pick())
		b.Append(v)
		return v
	case 3: // shifts with a bounded count
		ops := []ir.Op{ir.OpShl, ir.OpShr, ir.OpSar}
		v := f.NewValue(ops[g.r.Intn(3)], g.pick(), g.konst(int32(g.r.Intn(31))))
		b.Append(v)
		return v
	case 4: // signed division by a positive constant
		op := ir.OpDiv
		if g.r.Intn(2) == 0 {
			op = ir.OpMod
		}
		v := f.NewValue(op, g.pick(), g.konst(int32(1+g.r.Intn(13))))
		b.Append(v)
		return v
	case 5: // unary
		op := ir.OpNeg
		if g.r.Intn(2) == 0 {
			op = ir.OpNot
		}
		v := f.NewValue(op, g.pick())
		b.Append(v)
		return v
	case 6: // compare, every condition
		v := f.NewValue(ir.OpCmp, g.pick(), g.pick())
		v.Cond = isa.Cond(g.r.Intn(int(isa.NumConds)))
		b.Append(v)
		return v
	case 7: // width ops
		op := ir.OpSext
		if g.r.Intn(2) == 0 {
			op = ir.OpZext
		}
		v := f.NewValue(op, g.pick())
		v.Size = []uint8{1, 2, 4}[g.r.Intn(3)]
		b.Append(v)
		return v
	case 8: // sub-register write
		v := f.NewValue(ir.OpSubreg8, g.pick(), g.pick())
		b.Append(v)
		return v
	case 9: // store a value into the alloca, remember the slot
		off := int32(4 * g.r.Intn(16))
		addr := f.NewValue(ir.OpAdd, g.alloca, g.konst(off))
		b.Append(addr)
		st := f.NewValue(ir.OpStore, addr, g.pick())
		st.Size = 4
		b.Append(st)
		g.stored = append(g.stored, off)
		return nil
	case 10: // load from a previously stored slot
		if len(g.stored) == 0 {
			return nil
		}
		off := g.stored[g.r.Intn(len(g.stored))]
		addr := f.NewValue(ir.OpAdd, g.alloca, g.konst(off))
		b.Append(addr)
		ld := f.NewValue(ir.OpLoad, addr)
		ld.Size = 4
		b.Append(ld)
		return ld
	default: // scaled address: alloca + idx*4 within bounds, store+load
		idx := f.NewValue(ir.OpAnd, g.pick(), g.konst(15))
		b.Append(idx)
		sc := f.NewValue(ir.OpMul, idx, g.konst(4))
		b.Append(sc)
		addr := f.NewValue(ir.OpAdd, g.alloca, sc)
		b.Append(addr)
		st := f.NewValue(ir.OpStore, addr, g.pick())
		st.Size = 4
		b.Append(st)
		ld := f.NewValue(ir.OpLoad, addr)
		ld.Size = 4
		b.Append(ld)
		return ld
	}
}

// Build returns a module whose f(a,b) runs a random op chain with one phi
// diamond, called from _start with the given arguments.
func Build(seed int64, a, b int32) *ir.Module {
	r := rand.New(rand.NewSource(seed))
	m := ir.NewModule(fmt.Sprintf("rnd%d", seed))

	f := m.NewFunc("f", 0x2000)
	f.NumRet = 1
	pa := f.NewParam(isa.EAX, "a")
	pb := f.NewParam(isa.ECX, "b")
	entry := f.NewBlock(0)

	g := &gen{r: r, f: f, b: entry, pool: []*ir.Value{pa, pb}}
	al := f.NewValue(ir.OpAlloca)
	al.AllocSize = 64
	al.Name = "buf"
	al.Const = -64
	entry.Append(al)
	g.alloca = al
	g.pool = append(g.pool, g.konst(int32(r.Intn(1000)-500)))

	n := 6 + r.Intn(10)
	for i := 0; i < n; i++ {
		if v := g.op(); v != nil {
			g.pool = append(g.pool, v)
		}
	}

	// Diamond with a phi join.
	cond := f.NewValue(ir.OpCmp, g.pick(), g.pick())
	cond.Cond = isa.Cond(r.Intn(int(isa.NumConds)))
	entry.Append(cond)
	thenB := f.NewBlock(0)
	elseB := f.NewBlock(0)
	join := f.NewBlock(0)
	br := f.NewValue(ir.OpBr, cond)
	entry.Append(br)
	entry.Succs = []*ir.Block{thenB, elseB}
	thenB.Preds = []*ir.Block{entry}
	elseB.Preds = []*ir.Block{entry}

	g.b = thenB
	tv := f.NewValue(ir.OpAdd, g.pick(), g.konst(7))
	thenB.Append(tv)
	thenB.Append(f.NewValue(ir.OpJmp))
	thenB.Succs = []*ir.Block{join}

	g.b = elseB
	ev := f.NewValue(ir.OpXor, g.pick(), g.konst(21))
	elseB.Append(ev)
	elseB.Append(f.NewValue(ir.OpJmp))
	elseB.Succs = []*ir.Block{join}

	join.Preds = []*ir.Block{thenB, elseB}
	phi := f.NewValue(ir.OpPhi, tv, ev)
	join.AddPhi(phi)
	g.b = join
	g.pool = append(g.pool, phi)

	n = 4 + r.Intn(8)
	for i := 0; i < n; i++ {
		if v := g.op(); v != nil {
			g.pool = append(g.pool, v)
		}
	}
	// Fold the pool tail into one result so late values are live.
	res := g.pool[len(g.pool)-1]
	for i := 0; i < 3; i++ {
		res = f.NewValue(ir.OpXor, res, g.pick())
		join.Append(res)
	}
	join.Append(f.NewValue(ir.OpRet, res))

	// _start: call f(a, b) and exit with the result.
	start := m.NewFunc("_start", 0x1000)
	sb := start.NewBlock(0)
	ka := start.NewValue(ir.OpConst)
	ka.Const = a
	sb.Append(ka)
	kb := start.NewValue(ir.OpConst)
	kb.Const = b
	sb.Append(kb)
	call := start.NewValue(ir.OpCall, ka, kb)
	call.Callee = f
	call.NumRet = 1
	sb.Append(call)
	ex := start.NewValue(ir.OpExtract, call)
	ex.Idx = 0
	sb.Append(ex)
	ec := start.NewValue(ir.OpCallExt, ex)
	ec.Sym = "exit"
	ec.NumRet = 1
	sb.Append(ec)
	sb.Append(start.NewValue(ir.OpTrap))
	m.Entry = start
	return m
}
