package codegen

import (
	"wytiwyg/internal/ir"
	"wytiwyg/internal/isa"
	"wytiwyg/internal/opt"
)

// Address tiling: load/store addresses of the shape base + index*scale
// (+const) lower to the ISA's scaled-index memory operands instead of
// explicit arithmetic — recovering the addressing modes the original
// binaries used (-44(%ebp,%eax,8) and friends). Interior values of a tile
// whose only consumers are tiled memory operands are never emitted at all.

// tile describes a matched scaled address.
type tile struct {
	base  *ir.Value // nil: absolute (disp only) or alloca-relative
	alloc *ir.Value // alloca anchoring the base, if any
	disp  int32
	index *ir.Value
	scale uint8
}

func validScale(k int32) bool { return k == 1 || k == 2 || k == 4 || k == 8 }

// disableSkip is a debugging escape hatch for the interior-skip cascade.
var disableSkip = false

// matchTile recognizes add-trees with exactly one scaled (mul-by-const)
// component.
func (c *fnCG) matchTile(addr *ir.Value) (tile, []*ir.Value, bool) {
	if addr.Op != ir.OpAdd {
		return tile{}, nil, false
	}
	a, b := addr.Args[0], addr.Args[1]
	var idxMul, baseExpr *ir.Value
	switch {
	case b.Op == ir.OpMul && b.Args[1].Op == ir.OpConst && validScale(b.Args[1].Const):
		idxMul, baseExpr = b, a
	case a.Op == ir.OpMul && a.Args[1].Op == ir.OpConst && validScale(a.Args[1].Const):
		idxMul, baseExpr = a, b
	default:
		return tile{}, nil, false
	}
	t := tile{index: idxMul.Args[0], scale: uint8(idxMul.Args[1].Const)}
	interior := []*ir.Value{addr, idxMul}
	// Peel the base: constant, alloca, add(x, const), or plain value.
	switch {
	case baseExpr.Op == ir.OpConst:
		t.disp = baseExpr.Const
	case baseExpr.Op == ir.OpAlloca:
		t.alloc = baseExpr
	case baseExpr.Op == ir.OpAdd && baseExpr.Args[1].Op == ir.OpConst:
		t.disp = baseExpr.Args[1].Const
		inner := baseExpr.Args[0]
		if inner.Op == ir.OpAlloca {
			t.alloc = inner
		} else {
			t.base = inner
		}
		interior = append(interior, baseExpr)
	default:
		t.base = baseExpr
	}
	// The index must be a plain value (not a constant: folding handles
	// that).
	if t.index.Op == ir.OpConst {
		return tile{}, nil, false
	}
	return t, interior, true
}

// computeTiles fills c.tiles (keyed by address value) and c.skipped (interior
// values that nothing else consumes).
func (c *fnCG) computeTiles() {
	c.tiles = make(map[*ir.Value]tile)
	c.skipped = make(map[*ir.Value]bool)
	c.tileRefs = make(map[*ir.Value]bool)
	if c.g.opts.NoTiles {
		return
	}
	uses := opt.BuildUses(c.f)
	interiors := make(map[*ir.Value][]*ir.Value)
	for _, b := range c.f.Blocks {
		for _, v := range b.Insts {
			if v.Op != ir.OpLoad && v.Op != ir.OpStore {
				continue
			}
			addr := v.Args[0]
			if _, done := c.tiles[addr]; done {
				continue
			}
			if t, interior, ok := c.matchTile(addr); ok {
				c.tiles[addr] = t
				interiors[addr] = interior
			}
		}
	}
	for _, t := range c.tiles {
		if t.base != nil {
			c.tileRefs[t.base] = true
		}
		c.tileRefs[t.index] = true
	}
	if disableSkip {
		return
	}
	// Skip cascade: an interior value is never materialized when every use
	// is either a tiled memory address position (for the address value
	// itself) or another skipped value. Iterate to a fixpoint so interiors
	// shared by several tiles (a CSE-merged index multiply feeding four
	// addresses) skip too.
	cand := map[*ir.Value]bool{}
	for addr, interior := range interiors {
		cand[addr] = true
		for _, v := range interior[1:] {
			cand[v] = true
		}
	}
	// Values the tiles themselves read at the memory op must stay
	// materialized (tileRefs, filled above, also blocks their EAX fusion).
	for v := range c.tileRefs {
		delete(cand, v)
	}
	for changed := true; changed; {
		changed = false
		for v := range cand {
			if c.skipped[v] {
				continue
			}
			ok := true
			for _, u := range uses[v] {
				if (u.Op == ir.OpLoad || u.Op == ir.OpStore) && u.Args[0] == v {
					if _, tiled := c.tiles[v]; tiled {
						continue
					}
				}
				if c.skipped[u] {
					continue
				}
				ok = false
				break
			}
			if ok && len(uses[v]) > 0 {
				c.skipped[v] = true
				changed = true
			}
		}
	}
}

// emitTile forms the memory operand for a tiled address. Register budget:
// the base goes through scratch; the index uses EAX unless the base landed
// there, in which case ECX is free.
func (c *fnCG) emitTile(t tile, scratch isa.Reg) isa.MemRef {
	disp := t.disp
	baseReg := isa.NoReg
	switch {
	case t.alloc != nil:
		h := c.homes[t.alloc]
		baseReg = isa.ESP
		disp += h.allocOff + c.pushDepth
	case t.base != nil:
		baseReg = c.operand(t.base, scratch)
	}
	idxScratch := isa.EAX
	if baseReg == isa.EAX {
		idxScratch = scratch
	}
	idxReg := c.operand(t.index, idxScratch)
	return isa.MemRef{Base: baseReg, Index: idxReg, Scale: t.scale, Disp: disp}
}
