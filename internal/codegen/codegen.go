// Package codegen lowers IR modules back to machine code — the "compiler +
// linker" stage of the paper's Figure 4 that turns refined IR into the
// recovered binary. It handles both module shapes:
//
//   - unsymbolized (BinRec baseline): register-file signatures, an emulated
//     stack region in the data section, raw variadic calls lowered with
//     genuine stack switching;
//   - symbolized: explicit parameters, allocas as native frame slots, no
//     emulated stack.
//
// The convention for recompiled code: arguments pushed right to left,
// result 0 in EAX, extra tuple results through a per-module return buffer,
// EBX/ESI/EDI callee-saved (used for register allocation), ECX/EDX scratch.
package codegen

import (
	"fmt"

	"wytiwyg/internal/asm"
	"wytiwyg/internal/ir"
	"wytiwyg/internal/isa"
	"wytiwyg/internal/obj"
	"wytiwyg/internal/opt"
)

// Compile lowers a module to an executable image.
func Compile(mod *ir.Module, name string) (*obj.Image, error) {
	return CompileWith(mod, name, Options{})
}

// Options disables individual code-generation features, for ablation
// studies and debugging. The zero value is the full code generator.
type Options struct {
	// NoTiles disables scaled-index address tiling: every address is
	// materialized with explicit mul/add instructions.
	NoTiles bool
	// NoEAXFuse disables the one-instruction EAX forwarding window:
	// every value round-trips through its home.
	NoEAXFuse bool
	// NoCoalesce disables phi-web copy coalescing: loop-carried variables
	// get fresh homes and explicit edge copies.
	NoCoalesce bool
	// Oracle, when non-nil, supplies a per-function bounds oracle and
	// enables sanitizer-guard elision (guards.go). Callers wire the VSA
	// oracle here: func(f *ir.Func) BoundsOracle { return vsa.NewOracle(f) }.
	Oracle func(*ir.Func) BoundsOracle
	// Guards, when non-nil, receives the guard-elision counts.
	Guards *GuardStats
}

// CompileWith is Compile with feature toggles.
func CompileWith(mod *ir.Module, name string, opts Options) (*obj.Image, error) {
	g := &cg{mod: mod, b: asm.NewBuilder(name), opts: opts}
	return g.compile()
}

type cg struct {
	mod  *ir.Module
	b    *asm.Builder
	lbl  int
	opts Options
}

func (g *cg) newLabel(hint string) string {
	g.lbl++
	return fmt.Sprintf(".cg_%s_%d", hint, g.lbl)
}

func (g *cg) compile() (*obj.Image, error) {
	// Guard elision rewrites the IR, so it runs before anything is lowered.
	if g.opts.Oracle != nil {
		st := g.opts.Guards
		if st == nil {
			st = &GuardStats{}
		}
		for _, f := range g.mod.Funcs {
			elideGuards(f, g.opts.Oracle(f), st)
		}
	}
	// Original data section verbatim at DataBase.
	if len(g.mod.Data) > 0 {
		g.b.Bytes("", g.mod.Data)
	}
	// Return buffer for multi-result calls.
	g.b.Space("__retbuf", 4*isa.NumRegs, 4)
	var emuTop uint32
	if g.mod.EmuStackSize > 0 {
		base := g.b.Space("__emustack", g.mod.EmuStackSize, 16)
		emuTop = base + g.mod.EmuStackSize - 64
	}

	// Entry wrapper: call the lifted entry with its expected parameters.
	g.b.Func("_start")
	entry := g.mod.Entry
	for i := len(entry.Params) - 1; i >= 0; i-- {
		p := entry.Params[i]
		if p.RegHint == isa.ESP && emuTop != 0 {
			g.b.PushI(int32(emuTop))
		} else {
			g.b.PushI(0)
		}
	}
	g.b.Call(fnLabel(entry))
	if n := 4 * len(entry.Params); n > 0 {
		g.b.BinI(isa.ADDI, isa.ESP, int32(n))
	}
	g.b.Halt()

	for _, f := range g.mod.Funcs {
		fg := &fnCG{g: g, f: f}
		if err := fg.emit(); err != nil {
			return nil, fmt.Errorf("codegen: %s: %w", f.Name, err)
		}
	}
	img, err := g.b.Link("_start")
	if err != nil {
		return nil, err
	}
	return img, nil
}

// fnLabel is the assembler label of a lifted function.
func fnLabel(f *ir.Func) string { return "fn_" + f.Name }

// home describes where a value lives between instructions.
type home struct {
	inReg bool
	reg   isa.Reg
	// slot is the frame-slot index (for spilled values).
	slot int
	// frameAddr marks alloca values: the "value" is the address of frame
	// offset allocOff.
	frameAddr bool
	allocOff  int32
	// konst marks constants rematerialized at use.
	konst bool
	cval  int32
	// param marks values living in the incoming argument area.
	param bool
	pidx  int
}

type fnCG struct {
	g *cg
	f *ir.Func

	order     []*ir.Block
	homes     map[*ir.Value]home
	fused     map[*ir.Value]bool
	slots     int
	allocSize int32
	saved     []isa.Reg
	pushDepth int32
	epilogue  string
	blockLbl  map[*ir.Block]string

	// callExtracts maps each call to its extract values, for immediate
	// result spreading.
	callExtracts map[*ir.Value][]*ir.Value

	// stubs counts the trap stubs emitted so far, numbering their
	// "__stub$" symbols.
	stubs int

	// tiles maps load/store address values to scaled-index operands;
	// skipped marks tile interiors that are never emitted; tileRefs are
	// values tiles re-read at the memory op (they must keep real homes).
	tiles    map[*ir.Value]tile
	skipped  map[*ir.Value]bool
	tileRefs map[*ir.Value]bool

	// eaxFuse marks single-use values consumed by the immediately following
	// instruction: their result stays in EAX and never touches a slot.
	eaxFuse map[*ir.Value]bool
	// eaxPending/eaxCache implement the one-instruction forwarding window.
	eaxPending *ir.Value
	eaxCache   *ir.Value
}

func (c *fnCG) b() *asm.Builder { return c.g.b }

func (c *fnCG) emit() error {
	splitCriticalEdges(c.f)
	c.order = linearize(c.f)
	c.computeTiles()
	c.assignHomes()
	// Compare/branch fusion.
	uses := opt.BuildUses(c.f)
	c.fused = make(map[*ir.Value]bool)
	for _, blk := range c.f.Blocks {
		for _, v := range blk.Insts {
			if c.cmpFusable(uses, v) {
				c.fused[v] = true
			}
		}
	}

	c.blockLbl = make(map[*ir.Block]string, len(c.order))
	for _, blk := range c.order {
		c.blockLbl[blk] = c.g.newLabel(fmt.Sprintf("%s_b%d", c.f.Name, blk.ID))
	}
	c.epilogue = c.g.newLabel(c.f.Name + "_ret")

	b := c.b()
	b.Func(fnLabel(c.f))
	// Prologue.
	for _, r := range c.saved {
		b.Push(r)
	}
	frame := c.frameBytes()
	if frame > 0 {
		b.BinI(isa.SUBI, isa.ESP, frame)
	}
	// Load register-allocated parameters.
	for i, p := range c.f.Params {
		h := c.homes[p]
		if h.inReg {
			b.Load(h.reg, c.paramMem(i), 4, false)
		}
	}

	c.computeEAXFusion()

	for bi, blk := range c.order {
		b.Label(c.blockLbl[blk])
		c.emitHeadCopies(blk)
		for _, v := range blk.Insts {
			term := v.Op.IsTerm()
			if term {
				// Phi copies happen before the terminator on edges where
				// this block is the unique predecessor side.
				if err := c.emitEdgeCopies(blk); err != nil {
					return err
				}
			}
			// One-instruction EAX forwarding window.
			c.eaxCache = c.eaxPending
			c.eaxPending = nil
			if err := c.emitValue(blk, v, bi); err != nil {
				return fmt.Errorf("%s: %w", v.Op, err)
			}
			c.eaxCache = nil
		}
		c.eaxPending = nil
	}

	// Epilogue.
	b.Label(c.epilogue)
	if frame > 0 {
		b.BinI(isa.ADDI, isa.ESP, frame)
	}
	for i := len(c.saved) - 1; i >= 0; i-- {
		b.Pop(c.saved[i])
	}
	b.Ret()
	return nil
}

// frameBytes is the local frame size (allocas + spill slots).
func (c *fnCG) frameBytes() int32 {
	return c.allocSize + int32(4*c.slots)
}

// slotMem addresses spill slot i (slots sit above the alloca area).
func (c *fnCG) slotMem(slot int) isa.MemRef {
	return asm.Mem(isa.ESP, c.allocSize+int32(4*slot)+c.pushDepth)
}

// allocaMem addresses the start of an alloca's storage.
func (c *fnCG) allocaAddr(off int32) isa.MemRef {
	return asm.Mem(isa.ESP, off+c.pushDepth)
}

// paramMem addresses incoming parameter i.
func (c *fnCG) paramMem(i int) isa.MemRef {
	return asm.Mem(isa.ESP, c.frameBytes()+int32(4*len(c.saved))+4+int32(4*i)+c.pushDepth)
}

func (c *fnCG) push(r isa.Reg) {
	c.b().Push(r)
	c.pushDepth += 4
}

func (c *fnCG) pushI(v int32) {
	c.b().PushI(v)
	c.pushDepth += 4
}

func (c *fnCG) pop(r isa.Reg) {
	c.b().Pop(r)
	c.pushDepth -= 4
}
