package codegen_test

import (
	"fmt"
	"testing"

	"wytiwyg/internal/codegen"
	"wytiwyg/internal/codegen/irgen"
	"wytiwyg/internal/irexec"
	"wytiwyg/internal/machine"
)

// Every feature-ablation combination must still compile correct code: the
// options trade speed, never behaviour. Uses the random module generator,
// whose graphs exercise tiling, fusion and coalescing heavily.
func TestCodegenOptionsPreserveBehaviour(t *testing.T) {
	optSets := []codegen.Options{
		{NoTiles: true},
		{NoEAXFuse: true},
		{NoCoalesce: true},
		{NoTiles: true, NoEAXFuse: true, NoCoalesce: true},
	}
	for seed := int64(101); seed <= 120; seed++ {
		m := irgen.Build(seed, int32(seed*3), int32(100-seed))
		want, err := irexec.Run(m, machine.Input{}, nil, nil)
		if err != nil {
			t.Fatalf("seed %d: irexec: %v", seed, err)
		}
		for _, o := range optSets {
			o := o
			t.Run(fmt.Sprintf("seed%d_%+v", seed, o), func(t *testing.T) {
				img, err := codegen.CompileWith(m, "abl", o)
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				got, err := machine.Execute(img, machine.Input{}, nil)
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				if got.ExitCode != want.ExitCode {
					t.Errorf("exit = %d, want %d", got.ExitCode, want.ExitCode)
				}
			})
		}
	}
}

// Disabling a feature must never make code faster: the full generator is
// the lower envelope (cycles measured on the deterministic machine).
func TestCodegenOptionsNeverFaster(t *testing.T) {
	m := irgen.Build(7, 100, 200)
	full, err := codegen.Compile(m, "full")
	if err != nil {
		t.Fatal(err)
	}
	base, err := machine.Execute(full, machine.Input{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []codegen.Options{
		{NoTiles: true},
		{NoEAXFuse: true},
		{NoCoalesce: true},
	} {
		img, err := codegen.CompileWith(m, "abl", o)
		if err != nil {
			t.Fatal(err)
		}
		res, err := machine.Execute(img, machine.Input{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cycles < base.Cycles {
			t.Errorf("%+v beat the full generator: %d < %d cycles",
				o, res.Cycles, base.Cycles)
		}
	}
}
