package codegen

import (
	"wytiwyg/internal/ir"
	"wytiwyg/internal/opt"
)

// EAX fusion: an expression temporary with exactly one use in the
// immediately following instruction never needs a frame slot — the producer
// leaves it in EAX and the consumer reads it from there. Safety requires
// the consumer to read the fused operand before anything clobbers EAX, so
// fusion is allowed only in the operand position each consumer reads first
// (or in positions whose materialization never touches EAX).

// producesInEAX reports ops whose slot-homed results pass through EAX.
func producesInEAX(op ir.Op) bool {
	switch op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpMod, ir.OpAnd, ir.OpOr,
		ir.OpXor, ir.OpShl, ir.OpShr, ir.OpSar, ir.OpNeg, ir.OpNot,
		ir.OpSubreg8, ir.OpSext, ir.OpZext, ir.OpLoad, ir.OpCmp:
		return true
	}
	return false
}

// fusePosOK reports whether u reads operand v early enough for EAX
// forwarding.
func (c *fnCG) fusePosOK(u, v *ir.Value, blk *ir.Block) bool {
	hasEdgeCopies := func() bool {
		for _, s := range blk.Succs {
			if len(s.Phis) > 0 && len(s.Preds) >= 2 {
				return true
			}
		}
		return false
	}
	switch u.Op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpMod, ir.OpAnd, ir.OpOr,
		ir.OpXor, ir.OpShl, ir.OpShr, ir.OpSar, ir.OpSubreg8:
		return u.Args[0] == v && u.Args[1] != v
	case ir.OpNeg, ir.OpNot, ir.OpSext, ir.OpZext:
		return u.Args[0] == v
	case ir.OpCmp:
		if c.fused[u] {
			// The compare re-emits at the branch; the window is gone.
			return false
		}
		return u.Args[0] == v && u.Args[1] != v
	case ir.OpLoad:
		return u.Args[0] == v
	case ir.OpStore:
		if u.Args[0] == v {
			return true // addresses are checked against the cache first
		}
		// The value position is safe only when the address materializes
		// through ECX alone; tiled addresses also load an index into EAX.
		if _, tiled := c.tiles[u.Args[0]]; tiled {
			return false
		}
		return u.Args[1] == v
	case ir.OpBr:
		return u.Args[0] == v && !hasEdgeCopies()
	case ir.OpSwitch:
		return u.Args[0] == v && !hasEdgeCopies()
	case ir.OpRet:
		return len(u.Args) == 1 && u.Args[0] == v && !hasEdgeCopies()
	case ir.OpCall, ir.OpCallExt:
		// Arguments push last-first: only the last argument is read before
		// EAX is clobbered.
		return len(u.Args) > 0 && u.Args[len(u.Args)-1] == v
	case ir.OpCallInd:
		// The target is read first (into EDX); the last argument is pushed
		// first.
		if u.Args[0] == v {
			return true
		}
		return len(u.Args) > 1 && u.Args[len(u.Args)-1] == v
	case ir.OpCallExtRaw:
		return u.Args[0] == v
	}
	return false
}

// computeEAXFusion fills c.eaxFuse.
func (c *fnCG) computeEAXFusion() {
	c.eaxFuse = make(map[*ir.Value]bool)
	if c.g.opts.NoEAXFuse {
		return
	}
	uses := opt.BuildUses(c.f)
	for _, blk := range c.order {
		for i := 0; i+1 < len(blk.Insts); i++ {
			v := blk.Insts[i]
			u := blk.Insts[i+1]
			if !producesInEAX(v.Op) || c.fused[v] {
				continue
			}
			if c.skipped[v] || c.skipped[u] {
				continue // tile interiors are never materialized
			}
			if c.tileRefs[v] {
				continue // tiles re-read this value at the memory op
			}
			if h := c.homes[v]; h.inReg || h.konst || h.frameAddr {
				continue
			}
			if len(uses[v]) != 1 || uses[v][0] != u {
				continue
			}
			// Exactly one operand slot must reference v.
			refs := 0
			for _, a := range u.Args {
				if a == v {
					refs++
				}
			}
			if refs != 1 {
				continue
			}
			if c.fusePosOK(u, v, blk) {
				c.eaxFuse[v] = true
			}
		}
	}
}
