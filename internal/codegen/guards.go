package codegen

// VSA-fed guard elision: the sanitizer (internal/sanitize) brackets every
// provably-stack-derived memory access with a bounds check that exits the
// program on violation. Many of those checks are statically redundant —
// the value-set analysis proves the address can only ever fall inside the
// checked object — and the recompiled binary pays their cost on every
// execution (the paper's Table 1 overhead ratios). When the caller
// supplies a bounds oracle, codegen recognizes the sanitizer's exact guard
// shape and deletes the guards the oracle discharges, before lowering.
//
// The pass is deliberately narrow: it only removes branches whose failure
// successor is the sanitizer's abort block (exit(253); trap). A
// user-written branch that happens to look like a bounds comparison is
// never touched, so a wrong answer from the oracle could at worst keep a
// sanitizer check alive — it can never change program-visible behaviour
// of unsanitized code.

import (
	"wytiwyg/internal/ir"
	"wytiwyg/internal/isa"
	"wytiwyg/internal/opt"
)

// BoundsOracle is the bounds-proof interface guard elision consumes. It is
// implemented by vsa.Oracle; codegen depends only on the contract so the
// packages stay layered (mirroring opt.AliasOracle). Answers must be
// conservative: false means "cannot prove", and a false answer only costs
// a retained check.
type BoundsOracle interface {
	// InBounds reports that a sz-byte access through p is proven to stay
	// inside the object allocated by base.
	InBounds(p *ir.Value, sz int64, base *ir.Value) bool
}

// GuardStats counts the guards elision saw and removed across a module.
type GuardStats struct {
	Guards int // sanitizer bounds guards recognized
	Elided int // guards proven redundant and deleted
}

// guard is one matched sanitizer check: a sz-byte access at addr checked
// against the object allocated by base.
type guard struct {
	addr *ir.Value
	base *ir.Value
	sz   int64
}

// elideGuards removes every sanitizer guard in f the oracle proves
// redundant, accumulating counts into st. The CFG is re-simplified and
// dead check values swept only when something was elided.
func elideGuards(f *ir.Func, orc BoundsOracle, st *GuardStats) {
	if orc == nil {
		return
	}
	changed := false
	for _, b := range f.Blocks {
		g, ok := matchGuard(b)
		if !ok {
			continue
		}
		st.Guards++
		if !orc.InBounds(g.addr, g.sz, g.base) {
			continue
		}
		st.Elided++
		// The check can never fail: rewrite the branch into a jump to the
		// in-bounds successor and unlink the abort block.
		t := b.Insts[len(b.Insts)-1]
		t.Op = ir.OpJmp
		t.Args = nil
		fail := b.Succs[1]
		b.Succs = b.Succs[:1]
		for i, p := range fail.Preds {
			if p == b {
				fail.Preds = append(fail.Preds[:i], fail.Preds[i+1:]...)
				break
			}
		}
		changed = true
	}
	if changed {
		// Unreachable abort blocks drop, guard blocks merge back into the
		// straight line they split, and the orphaned compare/add/const
		// chain dies.
		opt.SimplifyCFG(f)
		opt.DCE(f)
	}
}

// matchGuard recognizes the block shape sanitize.insertCheck emits:
//
//	ok1 = cmp.ae addr, base          (base is an alloca)
//	end = add base, #AllocSize
//	lim = add addr, #accessSize
//	ok2 = cmp.be lim, end
//	br (and ok1, ok2) -> cont, fail  (fail = exit(253); trap)
//
// Only the dataflow is matched, not instruction positions, so the guard
// survives scheduling and CSE.
func matchGuard(b *ir.Block) (guard, bool) {
	t := b.Term()
	if t == nil || t.Op != ir.OpBr || len(b.Succs) != 2 {
		return guard{}, false
	}
	cond := t.Args[0]
	if cond.Op != ir.OpAnd {
		return guard{}, false
	}
	ok1, ok2 := cond.Args[0], cond.Args[1]
	if ok1.Op != ir.OpCmp || ok2.Op != ir.OpCmp {
		return guard{}, false
	}
	if ok1.Cond == isa.CondBE && ok2.Cond == isa.CondAE {
		ok1, ok2 = ok2, ok1
	}
	if ok1.Cond != isa.CondAE || ok2.Cond != isa.CondBE {
		return guard{}, false
	}
	addr, base := ok1.Args[0], ok1.Args[1]
	if base.Op != ir.OpAlloca {
		return guard{}, false
	}
	lim, end := ok2.Args[0], ok2.Args[1]
	if lim.Op != ir.OpAdd || end.Op != ir.OpAdd {
		return guard{}, false
	}
	if lim.Args[0] != addr || end.Args[0] != base {
		return guard{}, false
	}
	acc, size := lim.Args[1], end.Args[1]
	if acc.Op != ir.OpConst || size.Op != ir.OpConst {
		return guard{}, false
	}
	if int64(size.Const) != int64(base.AllocSize) {
		return guard{}, false
	}
	if !isAbortBlock(b.Succs[1]) {
		return guard{}, false
	}
	return guard{addr: addr, base: base, sz: int64(acc.Const)}, true
}

// isAbortBlock reports whether b is a sanitizer failure path: constants
// feeding a call to exit, then a trap, reached only to die.
func isAbortBlock(b *ir.Block) bool {
	n := len(b.Insts)
	if n < 2 || len(b.Phis) != 0 || len(b.Succs) != 0 {
		return false
	}
	if b.Insts[n-1].Op != ir.OpTrap {
		return false
	}
	call := b.Insts[n-2]
	if call.Op != ir.OpCallExt || call.Sym != "exit" {
		return false
	}
	for _, v := range b.Insts[:n-2] {
		if v.Op != ir.OpConst {
			return false
		}
	}
	return true
}
