package codegen_test

import (
	"fmt"
	"testing"

	"wytiwyg/internal/codegen"
	"wytiwyg/internal/codegen/irgen"
	"wytiwyg/internal/ir"
	"wytiwyg/internal/irexec"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/opt"
)

// IR-level differential testing: generate random (well-defined) IR
// functions (internal/codegen/irgen) — shapes the mini-C compiler would
// never emit — and require the code generator to agree with the IR
// interpreter exactly. This exercises register allocation, spilling, EAX
// fusion and operand tiling on adversarial value graphs.

// The same property with the full optimizer in the loop: Pipeline must
// preserve behaviour on adversarial graphs, and the code generator must
// handle whatever shapes the optimizer leaves behind.
func TestRandomIROptimizedMatchesInterpreter(t *testing.T) {
	for seed := int64(61); seed <= 100; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			a := int32(seed*13 - 500)
			b := int32(seed*-7 + 300)
			m := irgen.Build(seed, a, b)
			if err := ir.Verify(m); err != nil {
				t.Fatalf("generator produced invalid IR: %v", err)
			}
			want, err := irexec.Run(m, machine.Input{}, nil, nil)
			if err != nil {
				t.Fatalf("irexec pre-opt: %v", err)
			}
			opt.Pipeline(m)
			if err := ir.Verify(m); err != nil {
				t.Fatalf("optimizer broke the module: %v", err)
			}
			mid, err := irexec.Run(m, machine.Input{}, nil, nil)
			if err != nil {
				t.Fatalf("irexec post-opt: %v", err)
			}
			if mid.ExitCode != want.ExitCode {
				t.Fatalf("optimizer changed behaviour: %d -> %d", want.ExitCode, mid.ExitCode)
			}
			img, err := codegen.Compile(m, "rnd")
			if err != nil {
				t.Fatalf("codegen: %v", err)
			}
			got, err := machine.Execute(img, machine.Input{}, nil)
			if err != nil {
				t.Fatalf("machine: %v", err)
			}
			if got.ExitCode != want.ExitCode {
				t.Errorf("codegen exit = %d, interpreter = %d", got.ExitCode, want.ExitCode)
			}
		})
	}
}

func TestRandomIRCodegenMatchesInterpreter(t *testing.T) {
	for seed := int64(1); seed <= 60; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			a := int32(seed*31 - 700)
			b := int32(seed*-17 + 400)
			m := irgen.Build(seed, a, b)
			if err := ir.Verify(m); err != nil {
				t.Fatalf("generator produced invalid IR: %v", err)
			}
			want, err := irexec.Run(m, machine.Input{}, nil, nil)
			if err != nil {
				t.Fatalf("irexec: %v", err)
			}
			img, err := codegen.Compile(m, "rnd")
			if err != nil {
				t.Fatalf("codegen: %v", err)
			}
			got, err := machine.Execute(img, machine.Input{}, nil)
			if err != nil {
				t.Fatalf("machine: %v", err)
			}
			if got.ExitCode != want.ExitCode {
				t.Errorf("codegen exit = %d, interpreter = %d", got.ExitCode, want.ExitCode)
			}
		})
	}
}
