package codegen_test

// Guard elision tests: the sanitizer's bounds checks must disappear
// exactly when the VSA oracle proves the address in-bounds — and never
// when the index is attacker-controlled. Each case compiles the same
// module with and without the oracle and requires identical program
// behaviour, including the sanitizer still firing on violations.

import (
	"testing"

	"wytiwyg/internal/codegen"
	"wytiwyg/internal/ir"
	"wytiwyg/internal/isa"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/sanitize"
	"wytiwyg/internal/vsa"
)

// vsaOracle adapts the VSA analysis into codegen's bounds interface.
func vsaOracle(f *ir.Func) codegen.BoundsOracle { return vsa.NewOracle(f) }

// buildGuarded returns a module whose one function writes a 16-byte stack
// buffer at constant offsets and through a masked dynamic index — all
// provably in bounds. When wild is true it adds one more store whose index
// comes straight from input_int(0), which nothing bounds.
func buildGuarded(wild bool) *ir.Module {
	m := ir.NewModule("guards")
	f := m.NewFunc("f", 0x2000)
	f.NumRet = 1
	p := f.NewParam(isa.EAX, "x")
	b := f.NewBlock(0)
	k := func(c int32) *ir.Value {
		v := f.NewValue(ir.OpConst)
		v.Const = c
		b.Append(v)
		return v
	}
	buf := f.NewValue(ir.OpAlloca)
	buf.AllocSize = 16
	buf.Align = 4
	buf.Const = -16
	buf.Name = "buf"
	b.Append(buf)
	for _, off := range []int32{0, 4, 8, 12} {
		a := f.NewValue(ir.OpAdd, buf, k(off))
		b.Append(a)
		st := f.NewValue(ir.OpStore, a, p)
		st.Size = 4
		b.Append(st)
	}
	// Dynamic but masked: (x & 3) * 4 stays inside the buffer.
	idx := f.NewValue(ir.OpAnd, p, k(3))
	b.Append(idx)
	sc := f.NewValue(ir.OpMul, idx, k(4))
	b.Append(sc)
	da := f.NewValue(ir.OpAdd, buf, sc)
	b.Append(da)
	dst := f.NewValue(ir.OpStore, da, idx)
	dst.Size = 4
	b.Append(dst)
	last := da
	if wild {
		in := f.NewValue(ir.OpCallExt, k(0))
		in.Sym = "input_int"
		in.NumRet = 1
		b.Append(in)
		iv := f.NewValue(ir.OpExtract, in)
		iv.Idx = 0
		b.Append(iv)
		wsc := f.NewValue(ir.OpMul, iv, k(4))
		b.Append(wsc)
		wa := f.NewValue(ir.OpAdd, buf, wsc)
		b.Append(wa)
		wst := f.NewValue(ir.OpStore, wa, iv)
		wst.Size = 4
		b.Append(wst)
		last = wa
	}
	ld := f.NewValue(ir.OpLoad, last)
	ld.Size = 4
	b.Append(ld)
	b.Append(f.NewValue(ir.OpRet, ld))

	start := m.NewFunc("_start", 0x1000)
	sb := start.NewBlock(0)
	arg := start.NewValue(ir.OpConst)
	arg.Const = 6
	sb.Append(arg)
	call := start.NewValue(ir.OpCall, arg)
	call.Callee = f
	call.NumRet = 1
	sb.Append(call)
	ex := start.NewValue(ir.OpExtract, call)
	ex.Idx = 0
	sb.Append(ex)
	ec := start.NewValue(ir.OpCallExt, ex)
	ec.Sym = "exit"
	ec.NumRet = 1
	sb.Append(ec)
	sb.Append(start.NewValue(ir.OpTrap))
	m.Entry = start
	return m
}

// compileGuarded sanitizes a fresh module and compiles it, with or without
// the oracle, returning the image and the guard stats (zero without).
func compileGuarded(t *testing.T, wild, oracle bool) (*machine.Result, codegen.GuardStats, uint64) {
	t.Helper()
	m := buildGuarded(wild)
	if err := ir.Verify(m); err != nil {
		t.Fatalf("invalid module: %v", err)
	}
	checks := sanitize.Apply(m)
	if checks == 0 {
		t.Fatal("sanitizer instrumented nothing")
	}
	if err := ir.Verify(m); err != nil {
		t.Fatalf("sanitizer broke the module: %v", err)
	}
	var st codegen.GuardStats
	opts := codegen.Options{}
	if oracle {
		opts.Oracle = vsaOracle
		opts.Guards = &st
	}
	img, err := codegen.CompileWith(m, "guards", opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := machine.Execute(img, machine.Input{Ints: []int32{2}}, nil)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	return &res, st, res.Cycles
}

// TestGuardElisionProvable: every guard over provably in-bounds accesses is
// recognized and removed, and the program behaves identically but cheaper.
func TestGuardElisionProvable(t *testing.T) {
	plain, _, plainCycles := compileGuarded(t, false, false)
	elided, st, elidedCycles := compileGuarded(t, false, true)
	if st.Guards == 0 {
		t.Fatal("no guards recognized — pattern matcher is out of sync with the sanitizer")
	}
	if st.Elided != st.Guards {
		t.Fatalf("elided %d of %d provable guards", st.Elided, st.Guards)
	}
	if plain.ExitCode != elided.ExitCode {
		t.Fatalf("exit codes diverge: plain=%d elided=%d", plain.ExitCode, elided.ExitCode)
	}
	if elidedCycles >= plainCycles {
		t.Fatalf("elision did not pay: %d cycles with guards, %d without", plainCycles, elidedCycles)
	}
}

// TestGuardElisionKeepsUnprovable: an attacker-controlled index defeats the
// oracle, its guard stays, and the sanitizer still catches the violation.
func TestGuardElisionKeepsUnprovable(t *testing.T) {
	_, st, _ := compileGuarded(t, true, true)
	if st.Elided >= st.Guards {
		t.Fatalf("elided %d of %d guards — the attacker-controlled check must survive", st.Elided, st.Guards)
	}

	// The surviving guard must still fire: index 9 writes past the buffer.
	m := buildGuarded(true)
	sanitize.Apply(m)
	var st2 codegen.GuardStats
	img, err := codegen.CompileWith(m, "guards", codegen.Options{Oracle: vsaOracle, Guards: &st2})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := machine.Execute(img, machine.Input{Ints: []int32{9}}, nil)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if res.ExitCode != sanitize.ViolationExitCode {
		t.Fatalf("out-of-bounds write not caught after elision: exit=%d", res.ExitCode)
	}
}

// TestGuardElisionOffByDefault: the zero Options never touch guards.
func TestGuardElisionOffByDefault(t *testing.T) {
	_, st, _ := compileGuarded(t, false, false)
	if st.Guards != 0 || st.Elided != 0 {
		t.Fatalf("guard stats populated without an oracle: %+v", st)
	}
}
