package codegen_test

import (
	"bytes"
	"testing"

	"wytiwyg/internal/codegen"
	"wytiwyg/internal/core"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/opt"
)

type tprog struct {
	name   string
	src    string
	inputs []machine.Input
}

var programs = []tprog{
	{"const", `int main() { return 42; }`, nil},
	{"arith", `
int main() {
	int a = 10, b = 3;
	return a*b + a/b - a%b + (a<<2) - (a>>1) + (a&b) + (a|b) + (a^b);
}`, nil},
	{"loop", `
extern int input_int(int i);
int main() {
	int n = input_int(0), s = 0, i;
	for (i = 0; i < n; i++) s += i * i;
	return s % 251;
}`, []machine.Input{{Ints: []int32{30}}, {Ints: []int32{5}}}},
	{"calls", `
int add(int a, int b) { return a + b; }
int twice(int x) { return add(x, x); }
int main() { return twice(add(10, 11)); }`, nil},
	{"recursion", `
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main() { return fib(12); }`, nil},
	{"figure2", `
struct p { int x; int y; };
int f3(int n) { return n / 12; }
struct p *f2(struct p *a, struct p *b) { return a; }
int f1() {
	struct p *ptr; struct p a; struct p b[3];
	a.x = 3; a.y = 4;
	ptr = f2(&a, b);
	b[f3(sizeof(b))] = a;
	ptr->y = b[1].x;
	return ptr->y * 100 + b[2].x * 10 + b[2].y;
}
int main() { return f1(); }`, nil},
	{"arrays", `
int main() {
	int a[16];
	int i, s = 0;
	for (i = 0; i < 16; i++) a[i] = i * 3;
	for (i = 0; i < 16; i++) s += a[i];
	return s;
}`, nil},
	{"printf", `
extern int printf(char *fmt, ...);
int main() {
	int i;
	for (i = 0; i < 3; i++) printf("%d ", i);
	printf("%s\n", "end");
	return 0;
}`, nil},
	{"strings", `
extern int strlen(char *s);
extern int sprintf(char *dst, char *fmt, ...);
extern int strcmp(char *a, char *b);
int main() {
	char buf[32];
	sprintf(buf, "v%d", 7);
	if (strcmp(buf, "v7") != 0) return 1;
	return strlen(buf);
}`, nil},
	{"fnptr", `
int twice(int x) { return 2 * x; }
int thrice(int x) { return 3 * x; }
int apply(fnptr f, int v) { return f(v); }
int main() { return apply(&twice, 20) + apply(&thrice, 1) % 100; }`, nil},
	{"switch", `
extern int input_int(int i);
int classify(int v) {
	switch (v) {
	case 0: return 10;
	case 1: return 20;
	case 2: return 30;
	case 3: return 40;
	default: return -1;
	}
}
int main() { return classify(input_int(0)) + classify(input_int(1)); }`,
		[]machine.Input{{Ints: []int32{1, 3}}, {Ints: []int32{0, 9}}}},
	{"tailcall", `
int isOdd(int n);
int isEven(int n) { if (n == 0) return 1; return isOdd(n - 1); }
int isOdd(int n) { if (n == 0) return 0; return isEven(n - 1); }
int main() { return isEven(24) * 10 + isOdd(7); }`, nil},
	{"globals", `
int acc = 5;
int tbl[8];
int main() {
	int i;
	for (i = 0; i < 8; i++) tbl[i] = acc + i;
	return tbl[7] + acc;
}`, nil},
	{"heap", `
extern void *malloc(int n);
extern int memset(void *p, int v, int n);
int main() {
	char *p = (char*)malloc(16);
	memset(p, 7, 16);
	return p[0] + p[15];
}`, nil},
}

// recompile checks: native == recompiled(unsymbolized) == recompiled(symbolized+optimized).
func TestRecompileRoundTrip(t *testing.T) {
	for _, prog := range programs {
		inputs := prog.inputs
		if len(inputs) == 0 {
			inputs = []machine.Input{{}}
		}
		for _, prof := range gen.Profiles {
			label := prog.name + "/" + prof.Name
			img, err := gen.Build(prog.src, prof, "t")
			if err != nil {
				t.Fatalf("%s: build: %v", label, err)
			}

			// Unsymbolized recompile (BinRec baseline).
			p1, err := core.LiftBinary(img, inputs)
			if err != nil {
				t.Fatalf("%s: lift: %v", label, err)
			}
			opt.Pipeline(p1.Mod)
			raw, err := codegen.Compile(p1.Mod, "raw")
			if err != nil {
				t.Fatalf("%s: codegen raw: %v", label, err)
			}

			// Symbolized + optimized recompile (WYTIWYG).
			p2, err := core.LiftBinary(img, inputs)
			if err != nil {
				t.Fatalf("%s: lift2: %v", label, err)
			}
			if err := p2.Refine(); err != nil {
				t.Fatalf("%s: refine: %v", label, err)
			}
			opt.Pipeline(p2.Mod)
			sym, err := codegen.Compile(p2.Mod, "sym")
			if err != nil {
				t.Fatalf("%s: codegen sym: %v", label, err)
			}

			for i, input := range inputs {
				var natOut, rawOut, symOut bytes.Buffer
				nat, err := machine.Execute(img, input, &natOut)
				if err != nil {
					t.Fatalf("%s input %d native: %v", label, i, err)
				}
				r1, err := machine.Execute(raw, input, &rawOut)
				if err != nil {
					t.Fatalf("%s input %d raw recompiled: %v", label, i, err)
				}
				r2, err := machine.Execute(sym, input, &symOut)
				if err != nil {
					t.Fatalf("%s input %d sym recompiled: %v", label, i, err)
				}
				if r1.ExitCode != nat.ExitCode || rawOut.String() != natOut.String() {
					t.Errorf("%s input %d raw: exit %d/%d out %q/%q",
						label, i, r1.ExitCode, nat.ExitCode, rawOut.String(), natOut.String())
				}
				if r2.ExitCode != nat.ExitCode || symOut.String() != natOut.String() {
					t.Errorf("%s input %d sym: exit %d/%d out %q/%q",
						label, i, r2.ExitCode, nat.ExitCode, symOut.String(), natOut.String())
				}
			}
		}
	}
}

// The paper's headline: symbolized recompiled binaries beat non-symbolized
// ones, and recompiling -O0 binaries speeds them up.
func TestPerformanceOrdering(t *testing.T) {
	src := `
int work(int n) {
	int acc[8];
	int i, j, s = 0;
	for (i = 0; i < 8; i++) acc[i] = 0;
	for (j = 0; j < n; j++) {
		for (i = 0; i < 8; i++) acc[i] += i * j;
	}
	for (i = 0; i < 8; i++) s += acc[i];
	return s % 1000;
}
int main() { return work(200); }`
	img, err := gen.Build(src, gen.GCC12O0, "t")
	if err != nil {
		t.Fatal(err)
	}
	nat, err := machine.Execute(img, machine.Input{}, nil)
	if err != nil {
		t.Fatal(err)
	}

	p1, err := core.LiftBinary(img, nil)
	if err != nil {
		t.Fatal(err)
	}
	opt.Pipeline(p1.Mod)
	raw, err := codegen.Compile(p1.Mod, "raw")
	if err != nil {
		t.Fatal(err)
	}
	r1, err := machine.Execute(raw, machine.Input{}, nil)
	if err != nil {
		t.Fatal(err)
	}

	p2, err := core.LiftBinary(img, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Refine(); err != nil {
		t.Fatal(err)
	}
	opt.Pipeline(p2.Mod)
	sym, err := codegen.Compile(p2.Mod, "sym")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := machine.Execute(sym, machine.Input{}, nil)
	if err != nil {
		t.Fatal(err)
	}

	if r1.ExitCode != nat.ExitCode || r2.ExitCode != nat.ExitCode {
		t.Fatalf("exit codes: nat %d raw %d sym %d", nat.ExitCode, r1.ExitCode, r2.ExitCode)
	}
	t.Logf("cycles: native(O0)=%d raw=%d sym=%d", nat.Cycles, r1.Cycles, r2.Cycles)
	if r2.Cycles >= r1.Cycles {
		t.Errorf("symbolized (%d cycles) not faster than raw recompile (%d)", r2.Cycles, r1.Cycles)
	}
	// Reoptimizing an -O0 binary must beat the original (the paper's 2.10x
	// claim, in shape).
	if r2.Cycles >= nat.Cycles {
		t.Errorf("symbolized recompile (%d cycles) not faster than the -O0 original (%d)",
			r2.Cycles, nat.Cycles)
	}
}
