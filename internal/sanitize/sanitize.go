// Package sanitize implements a stack-bounds sanitizer over symbolized IR —
// the downstream application the paper uses to motivate precise variable
// recovery (§1: "Any transformations that affect the program's
// memory-layout (e.g., AddressSanitizer) cannot be applied to local ...
// variables" without symbolization; §7.2 suggests hardening recompiled
// binaries this way). Every load/store whose address provably derives from
// a recovered stack object gets a bounds check; violations exit with a
// distinctive status instead of silently corrupting neighbouring objects.
//
// The pass is meaningless on unsymbolized modules: with the stack lifted as
// one opaque byte array there are no object bounds to enforce — running it
// there instruments nothing, which is exactly the paper's point.
package sanitize

import (
	"wytiwyg/internal/ir"
	"wytiwyg/internal/isa"
)

// ViolationExitCode is the status a sanitized binary exits with on an
// out-of-bounds stack access.
const ViolationExitCode = 253

// Apply instruments every provably-stack-derived memory access in the
// module. It returns the number of checks inserted.
func Apply(mod *ir.Module) int {
	n := 0
	for _, f := range mod.Funcs {
		n += instrumentFunc(f)
	}
	return n
}

// allocaBase walks add/sub-with-constant chains to the anchoring alloca.
// Dynamic components (scaled indexes) are fine: the runtime check validates
// the final address.
func allocaBase(v *ir.Value) *ir.Value {
	for depth := 0; depth < 32; depth++ {
		switch v.Op {
		case ir.OpAlloca:
			return v
		case ir.OpAdd:
			// Follow whichever side can reach an alloca.
			if reachesAlloca(v.Args[0], 8) {
				v = v.Args[0]
				continue
			}
			if reachesAlloca(v.Args[1], 8) {
				v = v.Args[1]
				continue
			}
			return nil
		case ir.OpSub:
			if reachesAlloca(v.Args[0], 8) {
				v = v.Args[0]
				continue
			}
			return nil
		default:
			return nil
		}
	}
	return nil
}

func reachesAlloca(v *ir.Value, depth int) bool {
	if depth == 0 {
		return false
	}
	switch v.Op {
	case ir.OpAlloca:
		return true
	case ir.OpAdd:
		return reachesAlloca(v.Args[0], depth-1) || reachesAlloca(v.Args[1], depth-1)
	case ir.OpSub:
		return reachesAlloca(v.Args[0], depth-1)
	}
	return false
}

type site struct {
	block *ir.Block
	index int
	op    *ir.Value
	base  *ir.Value
}

func instrumentFunc(f *ir.Func) int {
	// Collect sites first: instrumentation splits blocks.
	var sites []site
	for _, b := range f.Blocks {
		for i, v := range b.Insts {
			if v.Op != ir.OpLoad && v.Op != ir.OpStore {
				continue
			}
			addr := v.Args[0]
			if addr.Op == ir.OpAlloca {
				continue // constant offset 0, size-checked statically below
			}
			if base := allocaBase(addr); base != nil {
				sites = append(sites, site{block: b, index: i, op: v, base: base})
			}
		}
	}
	// Instrument back to front so indices stay valid per block.
	for i := len(sites) - 1; i >= 0; i-- {
		insertCheck(f, sites[i])
	}
	return len(sites)
}

// insertCheck splits the block before the access:
//
//	... prefix ...
//	ok1 = cmp.ae addr, base
//	end = add base, size
//	lim = add addr, accessSize
//	ok2 = cmp.be lim, end
//	ok  = and ok1, ok2
//	br ok -> cont, fail
//	fail: callext exit(253); trap
//	cont: <the access> ... suffix ...
func insertCheck(f *ir.Func, s site) {
	b := s.block
	prefix := b.Insts[:s.index]
	suffix := b.Insts[s.index:]

	cont := f.NewBlock(0)
	fail := f.NewBlock(0)

	// Move the access and everything after it into cont.
	cont.Insts = append(cont.Insts, suffix...)
	for _, v := range cont.Insts {
		v.Block = cont
	}
	// cont inherits b's successors.
	cont.Succs = b.Succs
	for _, succ := range cont.Succs {
		for pi, p := range succ.Preds {
			if p == b {
				succ.Preds[pi] = cont
			}
		}
	}

	// Build the check in b.
	b.Insts = prefix
	addr := s.op.Args[0]
	newv := func(op ir.Op, args ...*ir.Value) *ir.Value {
		v := f.NewValue(op, args...)
		b.Append(v)
		return v
	}
	ok1 := newv(ir.OpCmp, addr, s.base)
	ok1.Cond = isa.CondAE
	size := f.NewValue(ir.OpConst)
	size.Const = int32(s.base.AllocSize)
	b.Append(size)
	end := newv(ir.OpAdd, s.base, size)
	acc := f.NewValue(ir.OpConst)
	acc.Const = int32(s.op.Size)
	b.Append(acc)
	lim := newv(ir.OpAdd, addr, acc)
	ok2 := newv(ir.OpCmp, lim, end)
	ok2.Cond = isa.CondBE
	ok := newv(ir.OpAnd, ok1, ok2)
	br := f.NewValue(ir.OpBr, ok)
	b.Append(br)
	b.Succs = []*ir.Block{cont, fail}
	cont.Preds = []*ir.Block{b}
	fail.Preds = []*ir.Block{b}

	// Fail path: report and stop.
	code := f.NewValue(ir.OpConst)
	code.Const = ViolationExitCode
	fail.Append(code)
	call := f.NewValue(ir.OpCallExt, code)
	call.Sym = "exit"
	call.NumRet = 1
	fail.Append(call)
	fail.Append(f.NewValue(ir.OpTrap))
}
