package sanitize_test

import (
	"testing"

	"wytiwyg/internal/codegen"
	"wytiwyg/internal/core"
	"wytiwyg/internal/ir"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/opt"
	"wytiwyg/internal/sanitize"
)

// A latent off-by-N: the index comes from input, traced in bounds.
const vulnSrc = `
extern int input_int(int i);
int main() {
	int a[4];
	int canary;
	canary = 7777;
	a[input_int(0)] = 42;
	return canary;
}`

func buildSanitized(t *testing.T, trace []machine.Input) (*core.Pipeline, int) {
	t.Helper()
	img, err := gen.Build(vulnSrc, gen.GCC12O0, "vuln")
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.LiftBinary(img, trace)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Refine(); err != nil {
		t.Fatal(err)
	}
	checks := sanitize.Apply(p.Mod)
	if err := ir.Verify(p.Mod); err != nil {
		t.Fatalf("verify after sanitize: %v", err)
	}
	return p, checks
}

func TestSanitizerCatchesOverflow(t *testing.T) {
	trace := []machine.Input{{Ints: []int32{2}}}
	p, checks := buildSanitized(t, trace)
	if checks == 0 {
		t.Fatal("no checks inserted on a symbolized module")
	}
	opt.Pipeline(p.Mod)
	out, err := codegen.Compile(p.Mod, "vuln-san")
	if err != nil {
		t.Fatal(err)
	}
	// In-bounds input: normal behaviour.
	r, err := machine.Execute(out, machine.Input{Ints: []int32{2}}, nil)
	if err != nil || r.ExitCode != 7777 {
		t.Fatalf("in-bounds: exit %d err %v", r.ExitCode, err)
	}
	// Out-of-bounds index on the SAME traced path: without the sanitizer
	// this silently smashes a neighbouring object; with it, the violation
	// exit code fires.
	r, err = machine.Execute(out, machine.Input{Ints: []int32{9}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.ExitCode != sanitize.ViolationExitCode {
		t.Errorf("overflow: exit %d, want %d", r.ExitCode, sanitize.ViolationExitCode)
	}
}

// Without symbolization there is nothing to check: the pass is a no-op on
// the opaque emulated stack — exactly the paper's motivation.
func TestSanitizerUselessWithoutSymbolization(t *testing.T) {
	img, err := gen.Build(vulnSrc, gen.GCC12O0, "vuln")
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.LiftBinary(img, []machine.Input{{Ints: []int32{2}}})
	if err != nil {
		t.Fatal(err)
	}
	if n := sanitize.Apply(p.Mod); n != 0 {
		t.Errorf("%d checks inserted on an unsymbolized module", n)
	}
}

// Checked binaries keep working on every traced input across the suite of
// shapes (derived pointers, struct members, char buffers).
func TestSanitizedBehaviourPreserved(t *testing.T) {
	src := `
extern int strlen(char *s);
extern int sprintf(char *dst, char *fmt, ...);
struct pair { int a; int b; };
int sum(int *v, int n) {
	int i, s = 0;
	for (i = 0; i < n; i++) s += v[i];
	return s;
}
int main() {
	int data[6];
	char buf[16];
	struct pair p;
	int i;
	for (i = 0; i < 6; i++) data[i] = i * i;
	p.a = sum(data, 6);
	p.b = 3;
	sprintf(buf, "x%d", p.a + p.b);
	return strlen(buf) + p.a;
}`
	img, err := gen.Build(src, gen.GCC12O3, "t")
	if err != nil {
		t.Fatal(err)
	}
	nat, err := machine.Execute(img, machine.Input{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.LiftBinary(img, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Refine(); err != nil {
		t.Fatal(err)
	}
	if n := sanitize.Apply(p.Mod); n == 0 {
		t.Fatal("no checks inserted")
	}
	opt.Pipeline(p.Mod)
	out, err := codegen.Compile(p.Mod, "san")
	if err != nil {
		t.Fatal(err)
	}
	r, err := machine.Execute(out, machine.Input{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.ExitCode != nat.ExitCode {
		t.Errorf("sanitized exit %d, native %d", r.ExitCode, nat.ExitCode)
	}
}
