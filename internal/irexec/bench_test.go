package irexec

import (
	"runtime/debug"
	"testing"

	"wytiwyg/internal/ir"
	"wytiwyg/internal/isa"
	"wytiwyg/internal/machine"
)

// benchModule builds a two-level lifted call chain: wrapper calls leaf,
// extracts both results and returns their sum. One wrapper invocation is a
// representative steady-state call/ret cycle (two frames, parameter binding,
// a call tuple, extracts, ALU work and returns).
func benchModule() (*ir.Module, *ir.Func) {
	m := ir.NewModule("bench")

	leaf := m.NewFunc("leaf", 0x2000)
	leaf.NumRet = 2
	lesp := leaf.NewParam(isa.ESP, "esp")
	la := leaf.NewParam(isa.EAX, "a")
	lb := leaf.NewParam(isa.ECX, "b")
	lblk := leaf.NewBlock(0)
	t1 := lblk.Append(leaf.NewValue(ir.OpAdd, la, lb))
	t2 := lblk.Append(leaf.NewValue(ir.OpXor, t1, la))
	t3 := lblk.Append(leaf.NewValue(ir.OpSub, t2, lb))
	_ = lesp
	lblk.Append(leaf.NewValue(ir.OpRet, t3, t1))

	wrap := m.NewFunc("wrapper", 0x1000)
	wrap.NumRet = 1
	wesp := wrap.NewParam(isa.ESP, "esp")
	wa := wrap.NewParam(isa.EAX, "a")
	wb := wrap.NewParam(isa.ECX, "b")
	wblk := wrap.NewBlock(0)
	call := wrap.NewValue(ir.OpCall, wesp, wa, wb)
	call.Callee = leaf
	call.NumRet = 2
	wblk.Append(call)
	e0 := wrap.NewValue(ir.OpExtract, call)
	e0.Idx = 0
	wblk.Append(e0)
	e1 := wrap.NewValue(ir.OpExtract, call)
	e1.Idx = 1
	wblk.Append(e1)
	sum := wblk.Append(wrap.NewValue(ir.OpAdd, e0, e1))
	wblk.Append(wrap.NewValue(ir.OpRet, sum))

	m.Entry = wrap
	return m, wrap
}

// BenchmarkIRCall measures one steady-state lifted call/ret cycle: a wrapper
// frame that calls a leaf, consumes its return tuple and returns.
func BenchmarkIRCall(b *testing.B) {
	mod, wrap := benchModule()
	ip, err := New(mod, machine.Input{}, nil)
	if err != nil {
		b.Fatal(err)
	}
	ip.MaxSteps = ^uint64(0)
	args := []uint32{isa.StackTop, 5, 7}
	dest := make([]uint32, wrap.NumRet)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ip.call(wrap, args, nil, nil, dest); err != nil {
			b.Fatal(err)
		}
	}
}

// TestCallRetZeroAlloc pins the frame-recycling guarantee: once the pool is
// warm, a lifted call/ret cycle (two frames deep here) performs no heap
// allocation.
func TestCallRetZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under the race detector")
	}
	mod, wrap := benchModule()
	ip, err := New(mod, machine.Input{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ip.MaxSteps = ^uint64(0)
	args := []uint32{isa.StackTop, 5, 7}
	dest := make([]uint32, wrap.NumRet)
	// A GC clears the frame pool, which would show up as (re)allocation
	// that has nothing to do with the steady-state path under test.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	for i := 0; i < 16; i++ { // warm the frame pool
		if err := ip.call(wrap, args, nil, nil, dest); err != nil {
			t.Fatal(err)
		}
	}
	// AllocsPerRun truncates total/runs: a high run count makes the test
	// immune to bounded background allocation (the runtime spawning threads
	// under a loaded scheduler) while still flagging any real per-call
	// allocation, which would add >= 1 per run.
	allocs := testing.AllocsPerRun(10000, func() {
		if err := ip.call(wrap, args, nil, nil, dest); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state call/ret allocates: %v allocs/op, want 0", allocs)
	}
	// leaf(5,7): t1=12, t2=12^5=9, t3=9-7=2; wrapper returns t3+t1 = 14.
	if dest[0] != 14 {
		t.Fatalf("result = %d, want 14", dest[0])
	}
}
