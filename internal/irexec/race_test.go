//go:build race

package irexec

// raceEnabled reports that this test binary was built with the race
// detector, under which sync.Pool intentionally drops items at random and
// the zero-allocation guarantee cannot hold.
const raceEnabled = true
