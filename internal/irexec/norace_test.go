//go:build !race

package irexec

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
