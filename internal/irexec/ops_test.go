package irexec_test

import (
	"strings"
	"testing"

	"wytiwyg/internal/ir"
	"wytiwyg/internal/irexec"
	"wytiwyg/internal/isa"
	"wytiwyg/internal/machine"
)

// runUnit builds a module whose _start exits with the value produced by
// build, then runs it and returns the exit code.
func runUnit(t *testing.T, build func(f *ir.Func, b *ir.Block) *ir.Value) int32 {
	t.Helper()
	m := ir.NewModule("unit")
	f := m.NewFunc("_start", 0x1000)
	b := f.NewBlock(0)
	res := build(f, b)
	call := f.NewValue(ir.OpCallExt, res)
	call.Sym = "exit"
	call.NumRet = 1
	b.Append(call)
	b.Append(f.NewValue(ir.OpTrap))
	m.Entry = f
	r, err := irexec.Run(m, machine.Input{}, nil, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return r.ExitCode
}

func konst(f *ir.Func, b *ir.Block, c int32) *ir.Value {
	v := f.NewValue(ir.OpConst)
	v.Const = c
	b.Append(v)
	return v
}

// Exit codes are truncated to a byte by the simulated libc, so unit results
// are reduced mod 251 before exiting.
func exitable(f *ir.Func, b *ir.Block, v *ir.Value) *ir.Value {
	m := konst(f, b, 251)
	mod := f.NewValue(ir.OpMod, v, m)
	b.Append(mod)
	k := konst(f, b, 251)
	add := f.NewValue(ir.OpAdd, mod, k)
	b.Append(add)
	m2 := konst(f, b, 251)
	mod2 := f.NewValue(ir.OpMod, add, m2)
	b.Append(mod2)
	return mod2
}

func TestBinaryOpSemantics(t *testing.T) {
	cases := []struct {
		op   ir.Op
		a, b int32
		want uint32
	}{
		{ir.OpAdd, 7, -3, 4},
		{ir.OpAdd, 1<<31 - 1, 1, 1 << 31}, // wraparound
		{ir.OpSub, 3, 10, uint32(0xFFFFFFF9)},
		{ir.OpMul, -4, 3, uint32(0xFFFFFFF4)},
		{ir.OpDiv, -7, 2, uint32(0xFFFFFFFD)}, // trunc toward zero
		{ir.OpDiv, 7, -2, uint32(0xFFFFFFFD)},
		{ir.OpMod, -7, 2, uint32(0xFFFFFFFF)}, // sign follows dividend
		{ir.OpMod, 7, -2, 1},
		{ir.OpAnd, 0x0FF0, 0x00FF, 0x00F0},
		{ir.OpOr, 0x0F00, 0x00F0, 0x0FF0},
		{ir.OpXor, -1, 0x0F, uint32(0xFFFFFFF0)},
		{ir.OpShl, 1, 33, 2}, // shift counts mask to 5 bits
		{ir.OpShr, -1, 28, 15},
		{ir.OpSar, -16, 2, uint32(0xFFFFFFFC)},
	}
	for _, c := range cases {
		c := c
		name := c.op.String()
		t.Run(name, func(t *testing.T) {
			got := runUnit(t, func(f *ir.Func, b *ir.Block) *ir.Value {
				x := konst(f, b, c.a)
				y := konst(f, b, c.b)
				v := f.NewValue(c.op, x, y)
				b.Append(v)
				return exitable(f, b, v)
			})
			want := (int32(c.want)%251 + 251) % 251
			if got != want {
				t.Errorf("%s(%d,%d) mod 251 = %d, want %d", name, c.a, c.b, got, want)
			}
		})
	}
}

func TestUnaryOpSemantics(t *testing.T) {
	cases := []struct {
		name  string
		build func(f *ir.Func, b *ir.Block) *ir.Value
		want  int32
	}{
		{"neg", func(f *ir.Func, b *ir.Block) *ir.Value {
			v := f.NewValue(ir.OpNeg, konst(f, b, -77))
			b.Append(v)
			return v
		}, 77},
		{"not", func(f *ir.Func, b *ir.Block) *ir.Value {
			v := f.NewValue(ir.OpNot, konst(f, b, -101))
			b.Append(v)
			return v
		}, 100},
		{"subreg8", func(f *ir.Func, b *ir.Block) *ir.Value {
			v := f.NewValue(ir.OpSubreg8, konst(f, b, 0x100), konst(f, b, 0x1FF))
			b.Append(v) // (0x100 &^ 0xFF) | 0xFF = 0x1FF = 511... mod exit below
			k := konst(f, b, 0x1FD)
			s := f.NewValue(ir.OpSub, v, k)
			b.Append(s)
			return s
		}, 2},
		{"sext8", func(f *ir.Func, b *ir.Block) *ir.Value {
			v := f.NewValue(ir.OpSext, konst(f, b, 0xFE))
			v.Size = 1
			b.Append(v)
			n := f.NewValue(ir.OpNeg, v)
			b.Append(n)
			return n
		}, 2},
		{"sext16", func(f *ir.Func, b *ir.Block) *ir.Value {
			v := f.NewValue(ir.OpSext, konst(f, b, 0xFFFD))
			v.Size = 2
			b.Append(v)
			n := f.NewValue(ir.OpNeg, v)
			b.Append(n)
			return n
		}, 3},
		{"zext8", func(f *ir.Func, b *ir.Block) *ir.Value {
			v := f.NewValue(ir.OpZext, konst(f, b, 0x1FF))
			v.Size = 1
			b.Append(v)
			k := konst(f, b, 0xF9)
			s := f.NewValue(ir.OpSub, v, k)
			b.Append(s)
			return s
		}, 6},
		{"zext16", func(f *ir.Func, b *ir.Block) *ir.Value {
			v := f.NewValue(ir.OpZext, konst(f, b, 0x10007))
			v.Size = 2
			b.Append(v)
			return v
		}, 7},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if got := runUnit(t, c.build); got != c.want {
				t.Errorf("= %d, want %d", got, c.want)
			}
		})
	}
}

func TestCmpAllConditions(t *testing.T) {
	type trio struct{ a, b int32 }
	// Pairs chosen so signed and unsigned orderings disagree.
	pairs := []trio{{-1, 1}, {1, -1}, {5, 5}, {2, 3}}
	want := map[isa.Cond][]int32{
		isa.CondEQ: {0, 0, 1, 0},
		isa.CondNE: {1, 1, 0, 1},
		isa.CondLT: {1, 0, 0, 1},
		isa.CondLE: {1, 0, 1, 1},
		isa.CondGT: {0, 1, 0, 0},
		isa.CondGE: {0, 1, 1, 0},
		isa.CondB:  {0, 1, 0, 1}, // 0xFFFFFFFF unsigned-greater than 1
		isa.CondBE: {0, 1, 1, 1},
		isa.CondA:  {1, 0, 0, 0},
		isa.CondAE: {1, 0, 1, 0},
	}
	for cond, exp := range want {
		for i, p := range pairs {
			cond, exp, i, p := cond, exp, i, p
			t.Run(cond.String(), func(t *testing.T) {
				got := runUnit(t, func(f *ir.Func, b *ir.Block) *ir.Value {
					c := f.NewValue(ir.OpCmp, konst(f, b, p.a), konst(f, b, p.b))
					c.Cond = cond
					b.Append(c)
					return c
				})
				if got != exp[i] {
					t.Errorf("cmp.%s(%d,%d) = %d, want %d", cond, p.a, p.b, got, exp[i])
				}
			})
		}
	}
}

// A diamond CFG with a phi join: exercises OpBr, OpJmp, phi evaluation and
// predecessor matching.
func TestBranchAndPhi(t *testing.T) {
	for _, sel := range []int32{0, 1} {
		sel := sel
		got := func() int32 {
			m := ir.NewModule("phi")
			f := m.NewFunc("_start", 0x1000)
			entry := f.NewBlock(0)
			then := f.NewBlock(0)
			els := f.NewBlock(0)
			join := f.NewBlock(0)

			c := f.NewValue(ir.OpConst)
			c.Const = sel
			entry.Append(c)
			br := f.NewValue(ir.OpBr, c)
			entry.Append(br)
			entry.Succs = []*ir.Block{then, els}
			then.Preds = []*ir.Block{entry}
			els.Preds = []*ir.Block{entry}

			a := f.NewValue(ir.OpConst)
			a.Const = 11
			then.Append(a)
			then.Append(f.NewValue(ir.OpJmp))
			then.Succs = []*ir.Block{join}

			d := f.NewValue(ir.OpConst)
			d.Const = 22
			els.Append(d)
			els.Append(f.NewValue(ir.OpJmp))
			els.Succs = []*ir.Block{join}

			join.Preds = []*ir.Block{then, els}
			phi := f.NewValue(ir.OpPhi, a, d)
			join.AddPhi(phi)
			call := f.NewValue(ir.OpCallExt, phi)
			call.Sym = "exit"
			call.NumRet = 1
			join.Append(call)
			join.Append(f.NewValue(ir.OpTrap))

			m.Entry = f
			r, err := irexec.Run(m, machine.Input{}, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			return r.ExitCode
		}()
		want := int32(22)
		if sel != 0 {
			want = 11
		}
		if got != want {
			t.Errorf("sel=%d: exit %d, want %d", sel, got, want)
		}
	}
}

func TestSwitchDispatch(t *testing.T) {
	build := func(sel int32) int32 {
		m := ir.NewModule("sw")
		f := m.NewFunc("_start", 0x1000)
		entry := f.NewBlock(0)
		c1 := f.NewBlock(0)
		c2 := f.NewBlock(0)
		def := f.NewBlock(0)

		s := f.NewValue(ir.OpConst)
		s.Const = sel
		entry.Append(s)
		sw := f.NewValue(ir.OpSwitch, s)
		sw.Cases = []ir.SwitchCase{{Val: 10}, {Val: 20}}
		entry.Append(sw)
		entry.Succs = []*ir.Block{c1, c2, def}

		exit := func(b *ir.Block, code int32) {
			k := f.NewValue(ir.OpConst)
			k.Const = code
			b.Append(k)
			call := f.NewValue(ir.OpCallExt, k)
			call.Sym = "exit"
			call.NumRet = 1
			b.Append(call)
			b.Append(f.NewValue(ir.OpTrap))
		}
		exit(c1, 1)
		exit(c2, 2)
		exit(def, 3)
		m.Entry = f
		r, err := irexec.Run(m, machine.Input{}, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return r.ExitCode
	}
	if got := build(10); got != 1 {
		t.Errorf("switch(10) = %d, want 1", got)
	}
	if got := build(20); got != 2 {
		t.Errorf("switch(20) = %d, want 2", got)
	}
	if got := build(99); got != 3 {
		t.Errorf("switch(99) = %d, want 3", got)
	}
}

// A callee returning a 2-tuple, consumed through OpExtract; plus an
// indirect call dispatching on the callee's original address.
func TestTupleCallAndIndirect(t *testing.T) {
	m := ir.NewModule("tuple")

	callee := m.NewFunc("divmod", 0x2000)
	callee.NumRet = 2
	pa := callee.NewParam(isa.EAX, "a")
	pb := callee.NewParam(isa.ECX, "b")
	cb := callee.NewBlock(0)
	q := callee.NewValue(ir.OpDiv, pa, pb)
	cb.Append(q)
	rm := callee.NewValue(ir.OpMod, pa, pb)
	cb.Append(rm)
	ret := callee.NewValue(ir.OpRet, q, rm)
	cb.Append(ret)

	f := m.NewFunc("_start", 0x1000)
	b := f.NewBlock(0)
	x := konst(f, b, 47)
	y := konst(f, b, 10)
	call := f.NewValue(ir.OpCall, x, y)
	call.Callee = callee
	call.NumRet = 2
	b.Append(call)
	e0 := f.NewValue(ir.OpExtract, call)
	e0.Idx = 0
	b.Append(e0)
	e1 := f.NewValue(ir.OpExtract, call)
	e1.Idx = 1
	b.Append(e1)

	// Indirect call to the same function through its address.
	addr := konst(f, b, 0x2000)
	ind := f.NewValue(ir.OpCallInd, addr, x, y)
	ind.NumRet = 2
	ind.Targets = []*ir.Func{callee}
	b.Append(ind)
	i0 := f.NewValue(ir.OpExtract, ind)
	i0.Idx = 0
	b.Append(i0)

	// 4*10 + 7 + 4 = 51
	ten := konst(f, b, 10)
	t1 := f.NewValue(ir.OpMul, e0, ten)
	b.Append(t1)
	t2 := f.NewValue(ir.OpAdd, t1, e1)
	b.Append(t2)
	t3 := f.NewValue(ir.OpAdd, t2, i0)
	b.Append(t3)

	call2 := f.NewValue(ir.OpCallExt, t3)
	call2.Sym = "exit"
	call2.NumRet = 1
	b.Append(call2)
	b.Append(f.NewValue(ir.OpTrap))
	m.Entry = f

	r, err := irexec.Run(m, machine.Input{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.ExitCode != 51 {
		t.Errorf("exit = %d, want 51", r.ExitCode)
	}
}

// Error paths must be reported as errors with useful context.
func TestErrorPaths(t *testing.T) {
	t.Run("indirect-unknown-target", func(t *testing.T) {
		m := ir.NewModule("bad")
		f := m.NewFunc("_start", 0x1000)
		b := f.NewBlock(0)
		addr := konst(f, b, 0xDEAD)
		ind := f.NewValue(ir.OpCallInd, addr)
		ind.NumRet = 0
		b.Append(ind)
		b.Append(f.NewValue(ir.OpTrap))
		m.Entry = f
		_, err := irexec.Run(m, machine.Input{}, nil, nil)
		if err == nil || !strings.Contains(err.Error(), "unknown") {
			t.Errorf("err = %v, want unknown-target error", err)
		}
	})
	t.Run("extract-out-of-range", func(t *testing.T) {
		m := ir.NewModule("bad")
		callee := m.NewFunc("one", 0x2000)
		callee.NumRet = 1
		cb := callee.NewBlock(0)
		k := callee.NewValue(ir.OpConst)
		k.Const = 5
		cb.Append(k)
		cb.Append(callee.NewValue(ir.OpRet, k))

		f := m.NewFunc("_start", 0x1000)
		b := f.NewBlock(0)
		call := f.NewValue(ir.OpCall)
		call.Callee = callee
		call.NumRet = 1
		b.Append(call)
		e := f.NewValue(ir.OpExtract, call)
		e.Idx = 3
		b.Append(e)
		b.Append(f.NewValue(ir.OpTrap))
		m.Entry = f
		_, err := irexec.Run(m, machine.Input{}, nil, nil)
		if err == nil || !strings.Contains(err.Error(), "extract") {
			t.Errorf("err = %v, want extract error", err)
		}
	})
	t.Run("arg-count-mismatch", func(t *testing.T) {
		m := ir.NewModule("bad")
		callee := m.NewFunc("two", 0x2000)
		callee.NumRet = 0
		callee.NewParam(isa.EAX, "a")
		cb := callee.NewBlock(0)
		cb.Append(callee.NewValue(ir.OpRet))

		f := m.NewFunc("_start", 0x1000)
		b := f.NewBlock(0)
		call := f.NewValue(ir.OpCall) // zero args for a 1-param callee
		call.Callee = callee
		call.NumRet = 0
		b.Append(call)
		b.Append(f.NewValue(ir.OpTrap))
		m.Entry = f
		_, err := irexec.Run(m, machine.Input{}, nil, nil)
		if err == nil || !strings.Contains(err.Error(), "args") {
			t.Errorf("err = %v, want arg-count error", err)
		}
	})
	t.Run("load-fault", func(t *testing.T) {
		m := ir.NewModule("bad")
		f := m.NewFunc("_start", 0x1000)
		b := f.NewBlock(0)
		z := konst(f, b, 4)
		ld := f.NewValue(ir.OpLoad, z)
		ld.Size = 4
		b.Append(ld)
		b.Append(f.NewValue(ir.OpTrap))
		m.Entry = f
		_, err := irexec.Run(m, machine.Input{}, nil, nil)
		if err == nil {
			t.Error("null-page load did not fault")
		}
	})
	t.Run("unknown-external", func(t *testing.T) {
		m := ir.NewModule("bad")
		f := m.NewFunc("_start", 0x1000)
		b := f.NewBlock(0)
		call := f.NewValue(ir.OpCallExt)
		call.Sym = "no_such_fn"
		call.NumRet = 1
		b.Append(call)
		b.Append(f.NewValue(ir.OpTrap))
		m.Entry = f
		_, err := irexec.Run(m, machine.Input{}, nil, nil)
		if err == nil {
			t.Error("unknown external accepted")
		}
	})
}

// Raw external calls read their arguments from emulated-stack memory
// (BinRec stack switching): args live at [base, base+4, ...].
func TestCallExtRaw(t *testing.T) {
	m := ir.NewModule("raw")
	f := m.NewFunc("_start", 0x1000)
	b := f.NewBlock(0)
	buf := f.NewValue(ir.OpAlloca)
	buf.AllocSize = 8
	buf.Name = "args"
	b.Append(buf)
	code := konst(f, b, 29)
	st := f.NewValue(ir.OpStore, buf, code)
	st.Size = 4
	b.Append(st)
	call := f.NewValue(ir.OpCallExtRaw, buf)
	call.Sym = "exit"
	call.NumRet = 1
	b.Append(call)
	b.Append(f.NewValue(ir.OpTrap))
	m.Entry = f
	r, err := irexec.Run(m, machine.Input{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.ExitCode != 29 {
		t.Errorf("exit = %d, want 29", r.ExitCode)
	}
}

// tupleTracer records Frame.Tuple contents observed at Exec hooks.
type tupleTracer struct {
	got []uint32
}

func (tr *tupleTracer) FnEnter(fr *irexec.Frame)                                            {}
func (tr *tupleTracer) FnExit(fr *irexec.Frame, ret *ir.Value, rets []uint32)               {}
func (tr *tupleTracer) Phi(fr *irexec.Frame, phi *ir.Value, incoming *ir.Value, val uint32) {}
func (tr *tupleTracer) CallPre(fr *irexec.Frame, call *ir.Value, args []uint32)             {}
func (tr *tupleTracer) Exec(fr *irexec.Frame, v *ir.Value, args []uint32, result uint32) {
	if v.Op == ir.OpCall {
		tr.got = append(tr.got, fr.Tuple(v)...)
	}
}

// Frame.Tuple exposes a call's full return tuple to tracers.
func TestFrameTuple(t *testing.T) {
	m := ir.NewModule("tuple2")
	callee := m.NewFunc("pair", 0x2000)
	callee.NumRet = 2
	cb := callee.NewBlock(0)
	k1 := callee.NewValue(ir.OpConst)
	k1.Const = 8
	cb.Append(k1)
	k2 := callee.NewValue(ir.OpConst)
	k2.Const = 9
	cb.Append(k2)
	cb.Append(callee.NewValue(ir.OpRet, k1, k2))

	f := m.NewFunc("_start", 0x1000)
	b := f.NewBlock(0)
	call := f.NewValue(ir.OpCall)
	call.Callee = callee
	call.NumRet = 2
	b.Append(call)
	zero := konst(f, b, 0)
	ec := f.NewValue(ir.OpCallExt, zero)
	ec.Sym = "exit"
	ec.NumRet = 1
	b.Append(ec)
	b.Append(f.NewValue(ir.OpTrap))
	m.Entry = f

	tr := &tupleTracer{}
	ip, err := irexec.New(m, machine.Input{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ip.Tr = tr
	if _, err := ip.Run(); err != nil {
		t.Fatal(err)
	}
	if len(tr.got) != 2 || tr.got[0] != 8 || tr.got[1] != 9 {
		t.Errorf("observed tuple %v, want [8 9]", tr.got)
	}
}
