// Package irexec interprets lifted IR modules. It plays the role of
// compiling and running the instrumented lifted program in the paper's
// refinement loop (Figure 4): the Tracer hook receives every executed
// instruction together with its operand values, which is how the dynamic
// analyses (saved-register identification, stack-variable tracking) observe
// the program. Library calls dispatch into the exact same simulated libc
// the machine uses, so behaviour matches the original binary bit for bit.
package irexec

import (
	"errors"
	"fmt"
	"io"

	"wytiwyg/internal/ir"
	"wytiwyg/internal/isa"
	"wytiwyg/internal/machine"
)

// NativeStackTop is where the interpreter's native-stack region (used by
// Alloca values after symbolization) begins, growing downward. It is
// disjoint from the emulated-stack region under isa.StackTop.
const NativeStackTop uint32 = 0xDFFF_FF00

// Frame is one activation of a lifted function.
type Frame struct {
	Fn       *ir.Func
	Caller   *Frame
	CallSite *ir.Value // the OpCall/OpCallInd in the caller, nil for entry
	// SP0 is the virtual stack pointer at entry (while the lifted
	// signature still carries ESP; 0 afterwards).
	SP0 uint32
	// Meta carries tracer-owned per-value metadata.
	Meta map[*ir.Value]any

	vals     map[*ir.Value]uint32
	tuples   map[*ir.Value][]uint32
	nativeSP uint32
}

// Get returns the current value of an SSA value in this frame. Constants
// evaluate positionally-independently (passes may move their uses above
// their definition point).
func (fr *Frame) Get(v *ir.Value) uint32 {
	if v.Op == ir.OpConst {
		return uint32(v.Const)
	}
	return fr.vals[v]
}

// Tuple returns the results of a call value.
func (fr *Frame) Tuple(v *ir.Value) []uint32 { return fr.tuples[v] }

// Tracer observes execution. All methods may be no-ops.
type Tracer interface {
	// FnEnter fires after parameters are bound.
	FnEnter(fr *Frame)
	// FnExit fires just before the frame is popped, with the OpRet
	// instruction and the return values.
	FnExit(fr *Frame, ret *ir.Value, rets []uint32)
	// Phi fires for each phi when control enters a block, with the selected
	// incoming SSA value and its runtime value.
	Phi(fr *Frame, phi *ir.Value, incoming *ir.Value, val uint32)
	// CallPre fires before an internal call (OpCall/OpCallInd) transfers
	// control, with the evaluated arguments; FnEnter for the callee follows
	// immediately.
	CallPre(fr *Frame, call *ir.Value, args []uint32)
	// Exec fires after an instruction computed its result. For calls, args
	// holds the evaluated arguments and result the first return value.
	Exec(fr *Frame, v *ir.Value, args []uint32, result uint32)
}

// Interp executes a module.
type Interp struct {
	Mod *ir.Module
	Mem *machine.Memory
	Lib *machine.LibState
	Tr  Tracer

	Steps    uint64
	MaxSteps uint64

	nativeSP uint32
}

// Result of a complete run.
type Result struct {
	ExitCode int32
	Steps    uint64
}

var errHalted = errors.New("halted")

// ErrTrap is returned when execution reaches an untraced path.
var ErrTrap = errors.New("irexec: trap: input exercised an untraced path")

// New prepares an interpreter over fresh memory.
func New(mod *ir.Module, input machine.Input, out io.Writer) (*Interp, error) {
	mem := machine.NewMemory()
	if err := mem.WriteBytes(isa.DataBase, mod.Data); err != nil {
		return nil, err
	}
	lib, err := machine.NewLibState(mem, input, out)
	if err != nil {
		return nil, err
	}
	return &Interp{
		Mod:      mod,
		Mem:      mem,
		Lib:      lib,
		MaxSteps: 4_000_000_000,
		nativeSP: NativeStackTop,
	}, nil
}

// Run executes a module under one input.
func Run(mod *ir.Module, input machine.Input, out io.Writer, tr Tracer) (Result, error) {
	ip, err := New(mod, input, out)
	if err != nil {
		return Result{}, err
	}
	ip.Tr = tr
	return ip.Run()
}

// Run executes from the module entry until exit.
func (ip *Interp) Run() (Result, error) {
	args := make([]uint32, len(ip.Mod.Entry.Params))
	for i, p := range ip.Mod.Entry.Params {
		if p.RegHint == isa.ESP {
			args[i] = isa.StackTop
		}
	}
	_, err := ip.call(ip.Mod.Entry, args, nil, nil)
	if err != nil && !errors.Is(err, errHalted) {
		return Result{}, err
	}
	if !ip.Lib.Halted {
		return Result{}, fmt.Errorf("irexec: program finished without exiting")
	}
	return Result{ExitCode: ip.Lib.ExitCode, Steps: ip.Steps}, nil
}

func (ip *Interp) call(f *ir.Func, args []uint32, caller *Frame, site *ir.Value) ([]uint32, error) {
	if len(args) != len(f.Params) {
		return nil, fmt.Errorf("irexec: call to %s with %d args, want %d", f.Name, len(args), len(f.Params))
	}
	fr := &Frame{
		Fn:       f,
		Caller:   caller,
		CallSite: site,
		vals:     make(map[*ir.Value]uint32, 64),
		nativeSP: ip.nativeSP,
	}
	for i, p := range f.Params {
		fr.vals[p] = args[i]
		if p.RegHint == isa.ESP {
			fr.SP0 = args[i]
		}
	}
	savedNative := ip.nativeSP
	defer func() { ip.nativeSP = savedNative }()

	if ip.Tr != nil {
		ip.Tr.FnEnter(fr)
	}

	cur := f.Entry()
	var prev *ir.Block
	for {
		// Phis evaluate simultaneously against the incoming edge.
		if len(cur.Phis) > 0 {
			idx := -1
			for i, p := range cur.Preds {
				if p == prev {
					idx = i
					break
				}
			}
			if idx < 0 {
				return nil, fmt.Errorf("irexec: %s: edge b%d->b%d unknown", f.Name, blockID(prev), cur.ID)
			}
			tmp := make([]uint32, len(cur.Phis))
			for i, phi := range cur.Phis {
				if phi.Args[idx] == nil {
					return nil, fmt.Errorf("irexec: %s: phi %s missing arg %d", f.Name, phi, idx)
				}
				tmp[i] = fr.Get(phi.Args[idx])
			}
			for i, phi := range cur.Phis {
				fr.vals[phi] = tmp[i]
				if ip.Tr != nil {
					ip.Tr.Phi(fr, phi, phi.Args[idx], tmp[i])
				}
			}
		}
		for _, v := range cur.Insts {
			ip.Steps++
			if ip.Steps > ip.MaxSteps {
				return nil, fmt.Errorf("irexec: step budget exceeded in %s", f.Name)
			}
			switch v.Op {
			case ir.OpJmp:
				prev, cur = cur, cur.Succs[0]
			case ir.OpBr:
				if fr.Get(v.Args[0]) != 0 {
					prev, cur = cur, cur.Succs[0]
				} else {
					prev, cur = cur, cur.Succs[1]
				}
			case ir.OpSwitch:
				sel := fr.Get(v.Args[0])
				next := cur.Succs[len(v.Cases)]
				for i, c := range v.Cases {
					if c.Val == sel {
						next = cur.Succs[i]
						break
					}
				}
				prev, cur = cur, next
			case ir.OpRet:
				rets := make([]uint32, len(v.Args))
				for i, a := range v.Args {
					rets[i] = fr.Get(a)
				}
				if ip.Tr != nil {
					ip.Tr.FnExit(fr, v, rets)
				}
				return rets, nil
			case ir.OpTrap:
				return nil, fmt.Errorf("%w (in %s)", ErrTrap, f.Name)
			default:
				if err := ip.exec(fr, v); err != nil {
					return nil, err
				}
				continue
			}
			break // control transferred
		}
	}
}

func blockID(b *ir.Block) int {
	if b == nil {
		return -1
	}
	return b.ID
}

func (ip *Interp) exec(fr *Frame, v *ir.Value) error {
	argv := make([]uint32, len(v.Args))
	for i, a := range v.Args {
		argv[i] = fr.Get(a)
	}
	var res uint32
	switch v.Op {
	case ir.OpConst:
		res = uint32(v.Const)
	case ir.OpSP0:
		res = fr.SP0
	case ir.OpAdd:
		res = argv[0] + argv[1]
	case ir.OpSub:
		res = argv[0] - argv[1]
	case ir.OpMul:
		res = argv[0] * argv[1]
	case ir.OpDiv:
		if argv[1] == 0 {
			return fmt.Errorf("irexec: division by zero in %s", fr.Fn.Name)
		}
		res = uint32(int32(argv[0]) / int32(argv[1]))
	case ir.OpMod:
		if argv[1] == 0 {
			return fmt.Errorf("irexec: division by zero in %s", fr.Fn.Name)
		}
		res = uint32(int32(argv[0]) % int32(argv[1]))
	case ir.OpAnd:
		res = argv[0] & argv[1]
	case ir.OpOr:
		res = argv[0] | argv[1]
	case ir.OpXor:
		res = argv[0] ^ argv[1]
	case ir.OpShl:
		res = argv[0] << (argv[1] & 31)
	case ir.OpShr:
		res = argv[0] >> (argv[1] & 31)
	case ir.OpSar:
		res = uint32(int32(argv[0]) >> (argv[1] & 31))
	case ir.OpNeg:
		res = -argv[0]
	case ir.OpNot:
		res = ^argv[0]
	case ir.OpSubreg8:
		res = argv[0]&^0xFF | argv[1]&0xFF
	case ir.OpSext:
		switch v.Size {
		case 1:
			res = uint32(int32(int8(argv[0])))
		case 2:
			res = uint32(int32(int16(argv[0])))
		default:
			res = argv[0]
		}
	case ir.OpZext:
		switch v.Size {
		case 1:
			res = argv[0] & 0xFF
		case 2:
			res = argv[0] & 0xFFFF
		default:
			res = argv[0]
		}
	case ir.OpCmp:
		if evalCond(v.Cond, argv[0], argv[1]) {
			res = 1
		}
	case ir.OpLoad:
		lv, err := ip.Mem.Load(argv[0], v.Size)
		if err != nil {
			return fmt.Errorf("irexec: %s: %w", fr.Fn.Name, err)
		}
		if v.Signed {
			switch v.Size {
			case 1:
				lv = uint32(int32(int8(lv)))
			case 2:
				lv = uint32(int32(int16(lv)))
			}
		}
		res = lv
	case ir.OpStore:
		if err := ip.Mem.Store(argv[0], argv[1], v.Size); err != nil {
			return fmt.Errorf("irexec: %s: %w", fr.Fn.Name, err)
		}
	case ir.OpAlloca:
		sz := (v.AllocSize + 3) &^ 3
		al := v.Align
		if al < 4 {
			al = 4
		}
		ip.nativeSP = (ip.nativeSP - sz) &^ (al - 1)
		res = ip.nativeSP
	case ir.OpCall:
		if ip.Tr != nil {
			ip.Tr.CallPre(fr, v, argv)
		}
		rets, err := ip.call(v.Callee, argv, fr, v)
		if err != nil {
			return err
		}
		if fr.tuples == nil {
			fr.tuples = make(map[*ir.Value][]uint32)
		}
		fr.tuples[v] = rets
		if len(rets) > 0 {
			res = rets[0]
		}
	case ir.OpCallInd:
		target := ip.Mod.FuncAt(argv[0])
		if target == nil {
			return fmt.Errorf("irexec: %s: indirect call to unknown 0x%x", fr.Fn.Name, argv[0])
		}
		if ip.Tr != nil {
			ip.Tr.CallPre(fr, v, argv)
		}
		rets, err := ip.call(target, argv[1:], fr, v)
		if err != nil {
			return err
		}
		if fr.tuples == nil {
			fr.tuples = make(map[*ir.Value][]uint32)
		}
		fr.tuples[v] = rets
		if len(rets) > 0 {
			res = rets[0]
		}
	case ir.OpCallExt:
		arg := func(i int) (uint32, error) {
			if i >= len(argv) {
				return 0, fmt.Errorf("irexec: %s: %s reads arg %d beyond %d",
					fr.Fn.Name, v.Sym, i, len(argv))
			}
			return argv[i], nil
		}
		ret, err := ip.Lib.Call(v.Sym, arg)
		if err != nil {
			return err
		}
		if fr.tuples == nil {
			fr.tuples = make(map[*ir.Value][]uint32)
		}
		fr.tuples[v] = []uint32{ret}
		res = ret
		if ip.Lib.Halted {
			if ip.Tr != nil {
				ip.Tr.Exec(fr, v, argv, res)
			}
			return errHalted
		}
	case ir.OpCallExtRaw:
		base := argv[0]
		arg := func(i int) (uint32, error) {
			return ip.Mem.Load(base+uint32(4*i), 4)
		}
		ret, err := ip.Lib.Call(v.Sym, arg)
		if err != nil {
			return err
		}
		if fr.tuples == nil {
			fr.tuples = make(map[*ir.Value][]uint32)
		}
		fr.tuples[v] = []uint32{ret}
		res = ret
		if ip.Lib.Halted {
			if ip.Tr != nil {
				ip.Tr.Exec(fr, v, argv, res)
			}
			return errHalted
		}
	case ir.OpExtract:
		tup := fr.tuples[v.Args[0]]
		if v.Idx >= len(tup) {
			return fmt.Errorf("irexec: %s: extract %d of %d-tuple", fr.Fn.Name, v.Idx, len(tup))
		}
		res = tup[v.Idx]
	default:
		return fmt.Errorf("irexec: %s: cannot execute %s", fr.Fn.Name, v.Op)
	}
	fr.vals[v] = res
	if ip.Tr != nil {
		ip.Tr.Exec(fr, v, argv, res)
	}
	return nil
}

func evalCond(c isa.Cond, a, b uint32) bool {
	switch c {
	case isa.CondEQ:
		return a == b
	case isa.CondNE:
		return a != b
	case isa.CondLT:
		return int32(a) < int32(b)
	case isa.CondLE:
		return int32(a) <= int32(b)
	case isa.CondGT:
		return int32(a) > int32(b)
	case isa.CondGE:
		return int32(a) >= int32(b)
	case isa.CondB:
		return a < b
	case isa.CondBE:
		return a <= b
	case isa.CondA:
		return a > b
	case isa.CondAE:
		return a >= b
	}
	return false
}
