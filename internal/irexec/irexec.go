// Package irexec interprets lifted IR modules. It plays the role of
// compiling and running the instrumented lifted program in the paper's
// refinement loop (Figure 4): the Tracer hook receives every executed
// instruction together with its operand values, which is how the dynamic
// analyses (saved-register identification, stack-variable tracking) observe
// the program. Library calls dispatch into the exact same simulated libc
// the machine uses, so behaviour matches the original binary bit for bit.
//
// The interpreter is built around the IR's dense execution layout
// (ir/layout.go): every frame keeps SSA values, call tuples and tracer
// metadata in flat slices indexed by Value.Slot, and frames are recycled
// through a sync.Pool-backed free list, so a steady-state call/ret cycle
// allocates nothing.
package irexec

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"wytiwyg/internal/ir"
	"wytiwyg/internal/isa"
	"wytiwyg/internal/machine"
)

// NativeStackTop is where the interpreter's native-stack region (used by
// Alloca values after symbolization) begins, growing downward. It is
// disjoint from the emulated-stack region under isa.StackTop.
const NativeStackTop uint32 = 0xDFFF_FF00

// Frame is one activation of a lifted function. Frames are recycled between
// activations: a *Frame pointer is only meaningful while its activation is
// live, and pointer identity does not distinguish activations — use Epoch
// for that.
type Frame struct {
	Fn       *ir.Func  // the function this activation executes
	Caller   *Frame    // the activation below, nil for entry
	CallSite *ir.Value // the OpCall/OpCallInd in the caller, nil for entry
	// SP0 is the virtual stack pointer at entry (while the lifted
	// signature still carries ESP; 0 afterwards).
	SP0 uint32
	// Epoch uniquely identifies this activation within one interpreter
	// run. Tracers that key state by activation must use it instead of the
	// frame pointer, which is recycled.
	Epoch uint64

	// regs is the dense SSA register file, indexed by Value.Slot.
	regs []uint32
	// tuples is the flat call-result arena; a call's results live at
	// Value.TupleOff.
	tuples []uint32
	// meta carries tracer-owned per-value metadata, indexed by Value.Slot;
	// allocated lazily on the first SetMeta so untraced runs never pay for
	// it.
	meta []any
	// argbuf and phibuf are per-frame scratch for operand evaluation and
	// simultaneous phi assignment.
	argbuf []uint32
	phibuf []uint32
}

// framePool recycles frames (and the slices they carry) across activations
// and interpreter instances.
var framePool = sync.Pool{New: func() any { return new(Frame) }}

// Get returns the current value of an SSA value in this frame. Constants
// evaluate positionally-independently (passes may move their uses above
// their definition point).
func (fr *Frame) Get(v *ir.Value) uint32 {
	if v.Op == ir.OpConst {
		return uint32(v.Const)
	}
	return fr.regs[v.Slot()]
}

// Tuple returns the results of a call value, or nil if the value produces
// no tuple. The slice aliases the frame's tuple arena and is only valid
// while the frame is live.
func (fr *Frame) Tuple(v *ir.Value) []uint32 {
	w := v.TupleWidth()
	if w == 0 || v.TupleOff() < 0 {
		return nil
	}
	off := v.TupleOff()
	return fr.tuples[off : off+w]
}

// GetMeta returns the tracer-owned metadata attached to v in this frame,
// or nil.
func (fr *Frame) GetMeta(v *ir.Value) any {
	if len(fr.meta) == 0 {
		return nil
	}
	return fr.meta[v.Slot()]
}

// SetMeta attaches tracer-owned metadata to v in this frame.
func (fr *Frame) SetMeta(v *ir.Value, x any) {
	if len(fr.meta) == 0 {
		n := fr.Fn.Layout().NumSlots
		if cap(fr.meta) < n {
			fr.meta = make([]any, n)
		} else {
			fr.meta = fr.meta[:n]
		}
	}
	fr.meta[v.Slot()] = x
}

// DelMeta removes v's metadata. Unlike SetMeta(v, nil) it never allocates
// the metadata file.
func (fr *Frame) DelMeta(v *ir.Value) {
	if len(fr.meta) > 0 {
		fr.meta[v.Slot()] = nil
	}
}

// Tracer observes execution. All methods may be no-ops. Slices passed to
// the hooks (args, rets) alias interpreter scratch buffers and must not be
// retained past the call.
type Tracer interface {
	// FnEnter fires after parameters are bound.
	FnEnter(fr *Frame)
	// FnExit fires just before the frame is popped, with the OpRet
	// instruction and the return values.
	FnExit(fr *Frame, ret *ir.Value, rets []uint32)
	// Phi fires for each phi when control enters a block, with the selected
	// incoming SSA value and its runtime value.
	Phi(fr *Frame, phi *ir.Value, incoming *ir.Value, val uint32)
	// CallPre fires before an internal call (OpCall/OpCallInd) transfers
	// control, with the evaluated arguments; FnEnter for the callee follows
	// immediately.
	CallPre(fr *Frame, call *ir.Value, args []uint32)
	// Exec fires after an instruction computed its result. For calls, args
	// holds the evaluated arguments and result the first return value.
	Exec(fr *Frame, v *ir.Value, args []uint32, result uint32)
}

// Interp executes a module.
type Interp struct {
	Mod *ir.Module        // the executed module
	Mem *machine.Memory   // the program's address space
	Lib *machine.LibState // simulated library state (shared with Mem)
	Tr  Tracer            // observation hook, may be nil

	Steps    uint64 // IR values evaluated
	MaxSteps uint64 // execution budget; 0 means the default limit

	// StubHits counts executions of trap instructions, keyed by the name
	// of the function the trap sits in. Populated lazily on the first hit;
	// zero for runs that never leave the traced region.
	StubHits map[string]int

	nativeSP uint32
	epoch    uint64
}

// Result of a complete run.
type Result struct {
	ExitCode int32  // the program's exit status
	Steps    uint64 // IR values evaluated
}

var errHalted = errors.New("halted")

// ErrTrap is returned when execution reaches an untraced path.
var ErrTrap = errors.New("irexec: trap: input exercised an untraced path")

// New prepares an interpreter over fresh memory.
func New(mod *ir.Module, input machine.Input, out io.Writer) (*Interp, error) {
	mem := machine.NewMemory()
	if err := mem.WriteBytes(isa.DataBase, mod.Data); err != nil {
		return nil, err
	}
	lib, err := machine.NewLibState(mem, input, out)
	if err != nil {
		return nil, err
	}
	return &Interp{
		Mod:      mod,
		Mem:      mem,
		Lib:      lib,
		MaxSteps: 4_000_000_000,
		nativeSP: NativeStackTop,
	}, nil
}

// Run executes a module under one input.
func Run(mod *ir.Module, input machine.Input, out io.Writer, tr Tracer) (Result, error) {
	ip, err := New(mod, input, out)
	if err != nil {
		return Result{}, err
	}
	ip.Tr = tr
	return ip.Run()
}

// Run executes from the module entry until exit.
func (ip *Interp) Run() (Result, error) {
	args := make([]uint32, len(ip.Mod.Entry.Params))
	for i, p := range ip.Mod.Entry.Params {
		if p.RegHint == isa.ESP {
			args[i] = isa.StackTop
		}
	}
	dest := make([]uint32, ip.Mod.Entry.NumRet)
	err := ip.call(ip.Mod.Entry, args, nil, nil, dest)
	if err != nil && !errors.Is(err, errHalted) {
		return Result{}, err
	}
	if !ip.Lib.Halted {
		return Result{}, fmt.Errorf("irexec: program finished without exiting")
	}
	return Result{ExitCode: ip.Lib.ExitCode, Steps: ip.Steps}, nil
}

// newFrame takes a recycled frame from the pool, sizes its slices for f's
// dense layout and binds the parameters. All call-state allocation lives
// here (the former lazy tuple-map initialization at the individual call-op
// sites included); in steady state every slice is reused.
func (ip *Interp) newFrame(f *ir.Func, args []uint32, caller *Frame, site *ir.Value) *Frame {
	f.EnsureLayout()
	lay := f.Layout()
	fr := framePool.Get().(*Frame)
	ip.epoch++
	fr.Fn, fr.Caller, fr.CallSite, fr.Epoch = f, caller, site, ip.epoch
	fr.SP0 = 0
	if cap(fr.regs) < lay.NumSlots {
		fr.regs = make([]uint32, lay.NumSlots)
	} else {
		fr.regs = fr.regs[:lay.NumSlots]
		clear(fr.regs)
	}
	if cap(fr.tuples) < lay.TupleWords {
		fr.tuples = make([]uint32, lay.TupleWords)
	} else {
		fr.tuples = fr.tuples[:lay.TupleWords]
		clear(fr.tuples)
	}
	if cap(fr.argbuf) < lay.MaxArgs {
		fr.argbuf = make([]uint32, lay.MaxArgs)
	} else {
		fr.argbuf = fr.argbuf[:lay.MaxArgs]
	}
	if cap(fr.phibuf) < lay.MaxPhis {
		fr.phibuf = make([]uint32, lay.MaxPhis)
	} else {
		fr.phibuf = fr.phibuf[:lay.MaxPhis]
	}
	fr.meta = fr.meta[:0]
	for i, p := range f.Params {
		fr.regs[p.Slot()] = args[i]
		if p.RegHint == isa.ESP {
			fr.SP0 = args[i]
		}
	}
	return fr
}

// freeFrame clears the frame's pointer-carrying state and returns it to the
// pool. Frames on error paths are simply dropped (the run is terminal).
func freeFrame(fr *Frame) {
	if m := fr.meta[:cap(fr.meta)]; len(m) > 0 {
		clear(m)
	}
	fr.Fn, fr.Caller, fr.CallSite = nil, nil, nil
	framePool.Put(fr)
}

// call runs one activation of f. The return values are written into dest
// (the caller's tuple-arena window for the call site, or a fresh slice for
// the entry call); at most len(dest) values are stored.
func (ip *Interp) call(f *ir.Func, args []uint32, caller *Frame, site *ir.Value, dest []uint32) error {
	if len(args) != len(f.Params) {
		return fmt.Errorf("irexec: call to %s with %d args, want %d", f.Name, len(args), len(f.Params))
	}
	fr := ip.newFrame(f, args, caller, site)
	savedNative := ip.nativeSP
	err := ip.run(fr, dest)
	ip.nativeSP = savedNative
	if err == nil {
		freeFrame(fr)
	}
	return err
}

// run executes fr's function body until it returns, traps or errors.
func (ip *Interp) run(fr *Frame, dest []uint32) error {
	f := fr.Fn
	if ip.Tr != nil {
		ip.Tr.FnEnter(fr)
	}

	cur := f.Entry()
	var prev *ir.Block
	for {
		// Phis evaluate simultaneously against the incoming edge.
		if len(cur.Phis) > 0 {
			idx := -1
			for i, p := range cur.Preds {
				if p == prev {
					idx = i
					break
				}
			}
			if idx < 0 {
				return fmt.Errorf("irexec: %s: edge b%d->b%d unknown", f.Name, blockID(prev), cur.ID)
			}
			tmp := fr.phibuf[:len(cur.Phis)]
			for i, phi := range cur.Phis {
				if phi.Args[idx] == nil {
					return fmt.Errorf("irexec: %s: phi %s missing arg %d", f.Name, phi, idx)
				}
				tmp[i] = fr.Get(phi.Args[idx])
			}
			for i, phi := range cur.Phis {
				fr.regs[phi.Slot()] = tmp[i]
				if ip.Tr != nil {
					ip.Tr.Phi(fr, phi, phi.Args[idx], tmp[i])
				}
			}
		}
		for _, v := range cur.Insts {
			ip.Steps++
			if ip.Steps > ip.MaxSteps {
				return fmt.Errorf("irexec: step budget exceeded in %s", f.Name)
			}
			switch v.Op {
			case ir.OpJmp:
				prev, cur = cur, cur.Succs[0]
			case ir.OpBr:
				if fr.Get(v.Args[0]) != 0 {
					prev, cur = cur, cur.Succs[0]
				} else {
					prev, cur = cur, cur.Succs[1]
				}
			case ir.OpSwitch:
				sel := fr.Get(v.Args[0])
				next := cur.Succs[len(v.Cases)]
				for i, c := range v.Cases {
					if c.Val == sel {
						next = cur.Succs[i]
						break
					}
				}
				prev, cur = cur, next
			case ir.OpRet:
				n := len(v.Args)
				if n > len(dest) {
					n = len(dest)
				}
				for i := 0; i < n; i++ {
					dest[i] = fr.Get(v.Args[i])
				}
				if ip.Tr != nil {
					ip.Tr.FnExit(fr, v, dest[:n])
				}
				return nil
			case ir.OpTrap:
				if ip.StubHits == nil {
					ip.StubHits = make(map[string]int)
				}
				ip.StubHits[f.Name]++
				return fmt.Errorf("%w (in %s)", ErrTrap, f.Name)
			default:
				if err := ip.exec(fr, v); err != nil {
					return err
				}
				continue
			}
			break // control transferred
		}
	}
}

func blockID(b *ir.Block) int {
	if b == nil {
		return -1
	}
	return b.ID
}

func (ip *Interp) exec(fr *Frame, v *ir.Value) error {
	argv := fr.argbuf[:len(v.Args)]
	for i, a := range v.Args {
		argv[i] = fr.Get(a)
	}
	var res uint32
	switch v.Op {
	case ir.OpConst:
		res = uint32(v.Const)
	case ir.OpSP0:
		res = fr.SP0
	case ir.OpAdd:
		res = argv[0] + argv[1]
	case ir.OpSub:
		res = argv[0] - argv[1]
	case ir.OpMul:
		res = argv[0] * argv[1]
	case ir.OpDiv:
		if argv[1] == 0 {
			return fmt.Errorf("irexec: division by zero in %s", fr.Fn.Name)
		}
		res = uint32(int32(argv[0]) / int32(argv[1]))
	case ir.OpMod:
		if argv[1] == 0 {
			return fmt.Errorf("irexec: division by zero in %s", fr.Fn.Name)
		}
		res = uint32(int32(argv[0]) % int32(argv[1]))
	case ir.OpAnd:
		res = argv[0] & argv[1]
	case ir.OpOr:
		res = argv[0] | argv[1]
	case ir.OpXor:
		res = argv[0] ^ argv[1]
	case ir.OpShl:
		res = argv[0] << (argv[1] & 31)
	case ir.OpShr:
		res = argv[0] >> (argv[1] & 31)
	case ir.OpSar:
		res = uint32(int32(argv[0]) >> (argv[1] & 31))
	case ir.OpNeg:
		res = -argv[0]
	case ir.OpNot:
		res = ^argv[0]
	case ir.OpSubreg8:
		res = argv[0]&^0xFF | argv[1]&0xFF
	case ir.OpSext:
		switch v.Size {
		case 1:
			res = uint32(int32(int8(argv[0])))
		case 2:
			res = uint32(int32(int16(argv[0])))
		default:
			res = argv[0]
		}
	case ir.OpZext:
		switch v.Size {
		case 1:
			res = argv[0] & 0xFF
		case 2:
			res = argv[0] & 0xFFFF
		default:
			res = argv[0]
		}
	case ir.OpCmp:
		if evalCond(v.Cond, argv[0], argv[1]) {
			res = 1
		}
	case ir.OpLoad:
		lv, err := ip.Mem.Load(argv[0], v.Size)
		if err != nil {
			return fmt.Errorf("irexec: %s: %w", fr.Fn.Name, err)
		}
		if v.Signed {
			switch v.Size {
			case 1:
				lv = uint32(int32(int8(lv)))
			case 2:
				lv = uint32(int32(int16(lv)))
			}
		}
		res = lv
	case ir.OpStore:
		if err := ip.Mem.Store(argv[0], argv[1], v.Size); err != nil {
			return fmt.Errorf("irexec: %s: %w", fr.Fn.Name, err)
		}
	case ir.OpAlloca:
		sz := (v.AllocSize + 3) &^ 3
		al := v.Align
		if al < 4 {
			al = 4
		}
		ip.nativeSP = (ip.nativeSP - sz) &^ (al - 1)
		res = ip.nativeSP
	case ir.OpCall:
		if ip.Tr != nil {
			ip.Tr.CallPre(fr, v, argv)
		}
		dest := fr.Tuple(v)
		if err := ip.call(v.Callee, argv, fr, v, dest); err != nil {
			return err
		}
		if len(dest) > 0 {
			res = dest[0]
		}
	case ir.OpCallInd:
		target := ip.Mod.FuncAt(argv[0])
		if target == nil {
			return fmt.Errorf("irexec: %s: indirect call to unknown 0x%x", fr.Fn.Name, argv[0])
		}
		if ip.Tr != nil {
			ip.Tr.CallPre(fr, v, argv)
		}
		dest := fr.Tuple(v)
		if err := ip.call(target, argv[1:], fr, v, dest); err != nil {
			return err
		}
		if len(dest) > 0 {
			res = dest[0]
		}
	case ir.OpCallExt:
		arg := func(i int) (uint32, error) {
			if i >= len(argv) {
				return 0, fmt.Errorf("irexec: %s: %s reads arg %d beyond %d",
					fr.Fn.Name, v.Sym, i, len(argv))
			}
			return argv[i], nil
		}
		ret, err := ip.Lib.Call(v.Sym, arg)
		if err != nil {
			return err
		}
		fr.Tuple(v)[0] = ret
		res = ret
		if ip.Lib.Halted {
			if ip.Tr != nil {
				ip.Tr.Exec(fr, v, argv, res)
			}
			return errHalted
		}
	case ir.OpCallExtRaw:
		base := argv[0]
		arg := func(i int) (uint32, error) {
			return ip.Mem.Load(base+uint32(4*i), 4)
		}
		ret, err := ip.Lib.Call(v.Sym, arg)
		if err != nil {
			return err
		}
		fr.Tuple(v)[0] = ret
		res = ret
		if ip.Lib.Halted {
			if ip.Tr != nil {
				ip.Tr.Exec(fr, v, argv, res)
			}
			return errHalted
		}
	case ir.OpExtract:
		tup := fr.Tuple(v.Args[0])
		if v.Idx >= len(tup) {
			return fmt.Errorf("irexec: %s: extract %d of %d-tuple", fr.Fn.Name, v.Idx, len(tup))
		}
		res = tup[v.Idx]
	default:
		return fmt.Errorf("irexec: %s: cannot execute %s", fr.Fn.Name, v.Op)
	}
	fr.regs[v.Slot()] = res
	if ip.Tr != nil {
		ip.Tr.Exec(fr, v, argv, res)
	}
	return nil
}

func evalCond(c isa.Cond, a, b uint32) bool {
	switch c {
	case isa.CondEQ:
		return a == b
	case isa.CondNE:
		return a != b
	case isa.CondLT:
		return int32(a) < int32(b)
	case isa.CondLE:
		return int32(a) <= int32(b)
	case isa.CondGT:
		return int32(a) > int32(b)
	case isa.CondGE:
		return int32(a) >= int32(b)
	case isa.CondB:
		return a < b
	case isa.CondBE:
		return a <= b
	case isa.CondA:
		return a > b
	case isa.CondAE:
		return a >= b
	}
	return false
}
