package irexec_test

import (
	"errors"
	"testing"

	"wytiwyg/internal/ir"
	"wytiwyg/internal/irexec"
	"wytiwyg/internal/isa"
	"wytiwyg/internal/machine"
)

// buildModule constructs a hand-written module: main computes with params,
// allocas and a loop, then exits via the external.
func buildExitModule(retVal int32) *ir.Module {
	m := ir.NewModule("t")
	f := m.NewFunc("_start", 0x1000)
	f.NumRet = 0
	b := f.NewBlock(0)
	k := f.NewValue(ir.OpConst)
	k.Const = retVal
	b.Append(k)
	call := f.NewValue(ir.OpCallExt, k)
	call.Sym = "exit"
	call.NumRet = 1
	b.Append(call)
	b.Append(f.NewValue(ir.OpTrap))
	m.Entry = f
	return m
}

func TestRunExit(t *testing.T) {
	m := buildExitModule(42)
	res, err := irexec.Run(m, machine.Input{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 42 {
		t.Errorf("exit = %d", res.ExitCode)
	}
}

func TestTrapReported(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("_start", 0x1000)
	f.NumRet = 0
	b := f.NewBlock(0)
	b.Append(f.NewValue(ir.OpTrap))
	m.Entry = f
	_, err := irexec.Run(m, machine.Input{}, nil, nil)
	if !errors.Is(err, irexec.ErrTrap) {
		t.Errorf("err = %v, want trap", err)
	}
}

func TestDivisionByZeroReported(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("_start", 0x1000)
	f.NumRet = 0
	b := f.NewBlock(0)
	one := f.NewValue(ir.OpConst)
	one.Const = 1
	zero := f.NewValue(ir.OpConst)
	zero.Const = 0
	div := f.NewValue(ir.OpDiv, one, zero)
	b.Append(one)
	b.Append(zero)
	b.Append(div)
	b.Append(f.NewValue(ir.OpTrap))
	m.Entry = f
	if _, err := irexec.Run(m, machine.Input{}, nil, nil); err == nil {
		t.Error("division by zero not reported")
	}
}

func TestAllocaAndMemory(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("_start", 0x1000)
	f.NumRet = 0
	b := f.NewBlock(0)
	a := f.NewValue(ir.OpAlloca)
	a.AllocSize = 8
	a.Align = 4
	b.Append(a)
	k := f.NewValue(ir.OpConst)
	k.Const = 77
	b.Append(k)
	st := f.NewValue(ir.OpStore, a, k)
	st.Size = 4
	b.Append(st)
	ld := f.NewValue(ir.OpLoad, a)
	ld.Size = 4
	b.Append(ld)
	call := f.NewValue(ir.OpCallExt, ld)
	call.Sym = "exit"
	call.NumRet = 1
	b.Append(call)
	b.Append(f.NewValue(ir.OpTrap))
	m.Entry = f
	res, err := irexec.Run(m, machine.Input{}, nil, nil)
	if err != nil || res.ExitCode != 77 {
		t.Fatalf("res=%v err=%v", res, err)
	}
}

// countingTracer verifies the hook contract: FnEnter/FnExit pairing and
// Exec/Phi/CallPre invocations.
type countingTracer struct {
	enters, exits, execs, phis, callpres int
}

func (c *countingTracer) FnEnter(fr *irexec.Frame)                           { c.enters++ }
func (c *countingTracer) FnExit(fr *irexec.Frame, ret *ir.Value, _ []uint32) { c.exits++ }
func (c *countingTracer) Phi(fr *irexec.Frame, _, _ *ir.Value, _ uint32)     { c.phis++ }
func (c *countingTracer) CallPre(fr *irexec.Frame, _ *ir.Value, _ []uint32)  { c.callpres++ }
func (c *countingTracer) Exec(fr *irexec.Frame, _ *ir.Value, _ []uint32, _ uint32) {
	c.execs++
}

func TestTracerHooks(t *testing.T) {
	m := ir.NewModule("t")
	// callee(n) -> n+1
	callee := m.NewFunc("callee", 0x2000)
	callee.NumRet = 1
	p := callee.NewParam(isa.EAX, "n")
	cb := callee.NewBlock(0)
	one := callee.NewValue(ir.OpConst)
	one.Const = 1
	cb.Append(one)
	add := callee.NewValue(ir.OpAdd, p, one)
	cb.Append(add)
	cb.Append(callee.NewValue(ir.OpRet, add))

	f := m.NewFunc("_start", 0x1000)
	f.NumRet = 0
	b := f.NewBlock(0)
	k := f.NewValue(ir.OpConst)
	k.Const = 41
	b.Append(k)
	call := f.NewValue(ir.OpCall, k)
	call.Callee = callee
	call.NumRet = 1
	b.Append(call)
	ex := f.NewValue(ir.OpExtract, call)
	ex.Idx = 0
	b.Append(ex)
	exit := f.NewValue(ir.OpCallExt, ex)
	exit.Sym = "exit"
	exit.NumRet = 1
	b.Append(exit)
	b.Append(f.NewValue(ir.OpTrap))
	m.Entry = f

	tr := &countingTracer{}
	res, err := irexec.Run(m, machine.Input{}, nil, tr)
	if err != nil || res.ExitCode != 42 {
		t.Fatalf("res=%v err=%v", res, err)
	}
	if tr.enters != 2 {
		t.Errorf("enters = %d, want 2", tr.enters)
	}
	if tr.exits != 1 { // _start exits via external, callee via ret
		t.Errorf("exits = %d, want 1", tr.exits)
	}
	if tr.callpres != 1 {
		t.Errorf("callpres = %d, want 1", tr.callpres)
	}
	if tr.execs == 0 {
		t.Error("no Exec events")
	}
}

func TestStepBudget(t *testing.T) {
	// Infinite loop must hit the step budget.
	m := ir.NewModule("t")
	f := m.NewFunc("_start", 0x1000)
	f.NumRet = 0
	b := f.NewBlock(0)
	b.Succs = []*ir.Block{b}
	b.Preds = []*ir.Block{b}
	b.Append(f.NewValue(ir.OpJmp))
	m.Entry = f
	ip, err := irexec.New(m, machine.Input{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ip.MaxSteps = 1000
	if _, err := ip.Run(); err == nil {
		t.Error("step budget not enforced")
	}
}

func TestConstOperandsPositionIndependent(t *testing.T) {
	// A value may reference a constant defined later in the block (passes
	// hoist uses above definitions); Frame.Get must still see it.
	m := ir.NewModule("t")
	f := m.NewFunc("_start", 0x1000)
	f.NumRet = 0
	b := f.NewBlock(0)
	k := f.NewValue(ir.OpConst) // NOT appended before its use
	k.Const = 9
	neg := f.NewValue(ir.OpNeg, k)
	b.Append(neg)
	b.Append(k)
	negneg := f.NewValue(ir.OpNeg, neg)
	b.Append(negneg)
	exit := f.NewValue(ir.OpCallExt, negneg)
	exit.Sym = "exit"
	exit.NumRet = 1
	b.Append(exit)
	b.Append(f.NewValue(ir.OpTrap))
	m.Entry = f
	res, err := irexec.Run(m, machine.Input{}, nil, nil)
	if err != nil || res.ExitCode != 9 {
		t.Fatalf("res=%v err=%v", res, err)
	}
}
