package core_test

import (
	"fmt"
	"strings"
	"testing"

	"wytiwyg/internal/bench"
	"wytiwyg/internal/bench/progs"
	"wytiwyg/internal/core"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/refcache"
)

// vsaRefinedAt runs the VSA-enabled pipeline on one benchmark.
func vsaRefinedAt(t *testing.T, p progs.Program, jobs int) *core.Pipeline {
	t.Helper()
	img, err := gen.Build(p.Src, gen.GCC12O3, p.Name)
	if err != nil {
		t.Fatalf("%s: build: %v", p.Name, err)
	}
	pl, err := core.LiftBinaryOpts(img, p.Inputs(),
		core.Options{Jobs: jobs, Lint: core.LintWarn, VSA: true})
	if err != nil {
		t.Fatalf("%s: lift: %v", p.Name, err)
	}
	if err := pl.Refine(); err != nil {
		t.Fatalf("%s: refine: %v", p.Name, err)
	}
	return pl
}

// vsaFingerprint renders the VSA outcomes a worker count could perturb:
// the stats (minus wall-clock) and the report, on top of the usual IR and
// layout fingerprint.
func vsaFingerprint(p *core.Pipeline) string {
	var b strings.Builder
	b.WriteString(fingerprint(p))
	for _, st := range p.VSAStats {
		fmt.Fprintf(&b, "%s checked=%d cross=%d oof=%d\n",
			st.Func, st.Checked, st.CrossSlot, st.OutOfFrame)
	}
	return b.String()
}

// The VSA stage must obey the pipeline-wide determinism contract: stats
// and findings are byte-identical across worker counts.
func TestVSAStageDeterministic(t *testing.T) {
	p := bench.Scaled(progs.All[0], 6)
	seq := vsaRefinedAt(t, p, 1)
	par := vsaRefinedAt(t, p, 8)
	if len(seq.VSAStats) == 0 {
		t.Fatal("VSA stage produced no stats")
	}
	if a, b := vsaFingerprint(seq), vsaFingerprint(par); a != b {
		t.Errorf("-j1 and -j8 VSA outputs differ\n-- j1:\n%.2000s\n-- j8:\n%.2000s", a, b)
	}
	found := false
	for _, st := range seq.Times {
		if st.Stage == "vsa" {
			found = true
		}
	}
	if !found {
		t.Error("no vsa stage recorded in Times")
	}
}

// On correctly recovered corpus programs the verifier must not claim a
// proven out-of-frame access: that finding is an Error and would be a
// false miscompilation report.
func TestVSAVerifierCleanOnCorpus(t *testing.T) {
	corpus := progs.All
	if testing.Short() {
		corpus = corpus[:3]
	}
	for _, p := range corpus {
		pl := vsaRefinedAt(t, bench.Scaled(p, 6), 0)
		for _, st := range pl.VSAStats {
			if st.OutOfFrame != 0 {
				t.Errorf("%s/%s: %d out-of-frame errors on a correct layout\n%s",
					p.Name, st.Func, st.OutOfFrame, pl.Report)
			}
		}
	}
}

// A warm cache serves a VSA-enabled run from its program key, and the key
// is distinct from the plain run's: enabling VSA must not reuse a report
// computed without its findings.
func TestVSAWarmCacheDistinctKey(t *testing.T) {
	cache, err := refcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := bench.Scaled(progs.All[0], 6)
	img, err := gen.Build(p.Src, gen.GCC12O3, p.Name)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Lint: core.LintWarn, Cache: cache, VSA: true}
	cold, err := core.RecoverLayout(img, p.Inputs(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.FromCache {
		t.Fatal("first run reported a cache hit")
	}
	warm, err := core.RecoverLayout(img, p.Inputs(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.FromCache {
		t.Fatal("second VSA run missed the cache")
	}
	cold.Report.Sort()
	warm.Report.Sort()
	if warm.Report.String() != cold.Report.String() {
		t.Errorf("cached VSA report differs:\n%s\nvs\n%s", warm.Report, cold.Report)
	}
	// Disabling VSA must change the key: the recorded report includes VSA
	// findings the plain pipeline never computes.
	plain, err := core.RecoverLayout(img, p.Inputs(),
		core.Options{Lint: core.LintWarn, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if plain.FromCache {
		t.Error("plain run hit the VSA run's cache entry")
	}
}
