package core

import (
	"wytiwyg/internal/analysis"
	"wytiwyg/internal/ir"
	"wytiwyg/internal/opt"
	"wytiwyg/internal/par"
	"wytiwyg/internal/typerec"
)

// RefineTypes runs the type-recovery stage: every function's frame slots
// get a type inferred from access widths and strided-interval facts
// (per-function, over the worker pool, results landing in module function
// order), then a single sequential unification pass propagates evidence
// across call boundaries. The typed layout, report and per-function stats
// are recorded on the pipeline; with linting enabled, every
// irreconcilable-evidence event becomes a typed-conflict warning. The
// stage is a no-op unless Options.Types was set.
func (p *Pipeline) RefineTypes() error {
	if !p.Types {
		return nil
	}
	funcs := p.Mod.Funcs
	results := make([]*typerec.FuncResult, len(funcs))
	par.ForEach(p.jobs(), len(funcs), func(i int) error {
		results[i] = typerec.AnalyzeFunc(funcs[i])
		return nil
	})
	// Unification is deterministic (module/alloca order) and cheap; it
	// runs sequentially after the per-function barrier so the outcome is
	// independent of the worker count.
	typerec.Unify(p.Mod, results)
	p.typeResults = make(map[*ir.Func]*typerec.FuncResult, len(results))
	stats := make([]TypeStat, len(results))
	for i, r := range results {
		p.typeResults[r.Fn()] = r
		st := TypeStat{Func: r.Fn().Name, Elapsed: r.Elapsed, Conflicts: len(r.Conflicts)}
		for _, v := range r.LayoutSlots() {
			st.Slots++
			if v.Type.Committed() {
				st.TypedSlots++
			}
		}
		stats[i] = st
	}
	p.TypeStats = stats
	p.Typed = typerec.TypedLayout(results)
	p.TypeReport = typerec.BuildReport(results)
	if p.Lint == LintOff {
		return nil
	}
	p.ensureReport()
	for i, r := range results {
		for _, c := range r.Conflicts {
			name := "<unnamed>"
			if c.Slot != nil && c.Slot.Name != "" {
				name = c.Slot.Name
			}
			p.Report.Addf("typed-conflict", analysis.Warn, funcs[i].Name, c.At,
				"slot %s: %s", name, c.Msg)
		}
	}
	p.Report.Sort()
	return p.lintGate("typerec")
}

// TypedInfo builds the optimizer's per-function typed-partition factory
// from the pipeline's Types setting: non-nil only when the stage ran, so
// callers can pass it to opt.PipelineOpts unconditionally.
func (p *Pipeline) TypedInfo() func(*ir.Func) opt.TypedInfo {
	if p.typeResults == nil {
		return nil
	}
	return func(f *ir.Func) opt.TypedInfo {
		r, ok := p.typeResults[f]
		if !ok {
			// An explicit nil interface: a typed nil *FuncResult would
			// defeat the nil check in SplitSlots.
			return nil
		}
		return r
	}
}
