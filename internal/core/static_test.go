package core_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"wytiwyg/internal/bench"
	"wytiwyg/internal/bench/progs"
	"wytiwyg/internal/codegen"
	"wytiwyg/internal/core"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/obj"
	"wytiwyg/internal/opt"
	"wytiwyg/internal/refcache"
)

// The partial-coverage scenario: a function-pointer dispatch traced on a
// single operation. The other three never execute; two are statically
// recoverable and one (op_leak) leaks a local's address, so its layout can
// never be admitted.
const staticSrc = `
extern int input_int(int i);
extern int printf(char *fmt, ...);

int op_add(int a, int b) { return a + b; }

int op_mul(int a, int b) { return a * b; }

int op_tab(int a, int b) {
	int t[4];
	t[0] = a; t[1] = b; t[2] = a + b; t[3] = a - b;
	return t[0] + t[1] + t[2] + t[3];
}

int *leak;
int op_leak(int a, int b) {
	int x;
	x = a + b;
	leak = &x;
	return *leak + b;
}

int apply(fnptr f, int a, int b) { return f(a, b); }

fnptr ops[4];

int main() {
	int op, a, b, r;
	ops[0] = &op_add;
	ops[1] = &op_mul;
	ops[2] = &op_tab;
	ops[3] = &op_leak;
	op = input_int(0);
	a = input_int(1);
	b = input_int(2);
	r = apply(ops[op & 3], a, b);
	printf("r=%d\n", r);
	return r & 63;
}
`

// staticTraceInput exercises only op_add; staticColdInputs dispatch to the
// three never-traced operations.
var (
	staticTraceInput = machine.Input{Ints: []int32{0, 5, 7}}
	staticColdInputs = []machine.Input{
		{Ints: []int32{1, 5, 7}},
		{Ints: []int32{2, 5, 7}},
		{Ints: []int32{3, 9, 4}},
	}
)

// staticRecompile lifts staticSrc from the single-operation trace and
// recompiles, optionally with static recovery.
func staticRecompile(t *testing.T, jobs int, static bool) (*core.Pipeline, *obj.Image, *obj.Image) {
	t.Helper()
	img, err := gen.Build(staticSrc, gen.GCC12O3, "static-cov")
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.LiftBinaryOpts(img, []machine.Input{staticTraceInput},
		core.Options{Jobs: jobs, Lint: core.LintWarn, StaticRecover: static})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Refine(); err != nil {
		t.Fatal(err)
	}
	opt.Pipeline(p.Mod)
	out, err := codegen.Compile(p.Mod, "static-cov-rec")
	if err != nil {
		t.Fatal(err)
	}
	return p, img, out
}

// runOn executes an image and returns the exit code, output and stub hits.
func runOn(t *testing.T, img *obj.Image, in machine.Input) (int32, string, map[string]uint64) {
	t.Helper()
	var buf bytes.Buffer
	res, err := machine.Execute(img, in, &buf)
	if err != nil {
		t.Fatal(err)
	}
	return res.ExitCode, buf.String(), res.StubHits
}

// The acceptance criteria of the hybrid-coverage story in one test: static
// recovery admits at least half of the cold operations, every admitted one
// computes exactly what the original binary computes (zero unsound
// admissions), the unverifiable one still traps, and the stub-hit rate over
// the untraced inputs strictly drops.
func TestStaticRecoverPartialCoverage(t *testing.T) {
	_, img, plain := staticRecompile(t, 0, false)
	plainTrapped := 0
	for _, in := range staticColdInputs {
		if _, _, stubs := runOn(t, plain, in); len(stubs) > 0 {
			plainTrapped++
		}
	}
	if plainTrapped != len(staticColdInputs) {
		t.Fatalf("without static recovery %d/%d cold inputs trapped, want all",
			plainTrapped, len(staticColdInputs))
	}

	p, _, rec := staticRecompile(t, 0, true)
	admitted := 0
	for _, st := range p.ColdStats {
		if st.Admitted {
			admitted++
		}
	}
	if len(p.ColdStats) == 0 || admitted*2 < len(p.ColdStats) {
		t.Errorf("admitted %d of %d cold candidates, want at least half (stats %+v)",
			admitted, len(p.ColdStats), p.ColdStats)
	}
	if _, degraded := p.Degraded["op_leak"]; !degraded {
		t.Error("op_leak admitted despite its escaping local")
	}

	recTrapped := 0
	for _, in := range staticColdInputs {
		exit, out, stubs := runOn(t, rec, in)
		if len(stubs) > 0 {
			recTrapped++
			if exit != 254 {
				t.Errorf("input %v: stub hit with exit %d, want the trap code 254", in.Ints, exit)
			}
			continue
		}
		// Differential check: an admitted path must match the original.
		nexit, nout, _ := runOn(t, img, in)
		if exit != nexit || out != nout {
			t.Errorf("input %v: recovered exit=%d %q, original exit=%d %q",
				in.Ints, exit, out, nexit, nout)
		}
	}
	if recTrapped >= plainTrapped {
		t.Errorf("stub-hit rate did not drop: %d/%d with static recovery vs %d/%d without",
			recTrapped, len(staticColdInputs), plainTrapped, len(staticColdInputs))
	}
	// The traced path must keep working.
	exit, out, stubs := runOn(t, rec, staticTraceInput)
	nexit, nout, _ := runOn(t, img, staticTraceInput)
	if len(stubs) > 0 || exit != nexit || out != nout {
		t.Errorf("traced input: recovered exit=%d %q stubs=%v, original exit=%d %q",
			exit, out, stubs, nexit, nout)
	}
}

// staticFingerprint extends the pipeline fingerprint with every static
// recovery outcome a worker count could perturb (wall-clock excluded).
func staticFingerprint(p *core.Pipeline, out *obj.Image) string {
	var b strings.Builder
	b.WriteString(fingerprint(p))
	if p.Cold != nil {
		fmt.Fprintf(&b, "seeds=%d dispatch=%v\n", p.Cold.Seeds, p.Cold.Dispatch)
		for _, r := range p.Cold.Rejected {
			fmt.Fprintf(&b, "rejected %s@%#x: %s\n", r.Name, r.Entry, r.Reason)
		}
	}
	for _, st := range p.ColdStats {
		fmt.Fprintf(&b, "cold %s@%#x admitted=%v reason=%q checked=%d cross=%d unbounded=%d\n",
			st.Func, st.Entry, st.Admitted, st.Reason, st.Checked, st.CrossSlot, st.Unbounded)
	}
	for _, in := range out.Code {
		fmt.Fprintf(&b, "%s\n", in.String())
	}
	return b.String()
}

// TestParallelDeterminism, extended to the static recovery stage: a -j1 and
// a -j8 run must agree byte for byte on the IR, layouts, report, cold
// verdicts and the final recompiled instruction stream.
func TestStaticRecoverDeterministic(t *testing.T) {
	p1, _, out1 := staticRecompile(t, 1, true)
	p8, _, out8 := staticRecompile(t, 8, true)
	if len(p1.ColdStats) == 0 {
		t.Fatal("static recovery produced no cold stats")
	}
	if a, b := staticFingerprint(p1, out1), staticFingerprint(p8, out8); a != b {
		t.Errorf("-j1 and -j8 static outputs differ\n-- j1:\n%.2000s\n-- j8:\n%.2000s", a, b)
	}
	found := false
	for _, st := range p1.Times {
		if st.Stage == "coldrec" {
			found = true
		}
	}
	if !found {
		t.Error("no coldrec stage recorded in Times")
	}
	// The corpus must stay deterministic with the stage enabled, even where
	// it finds nothing to recover.
	for _, p := range progs.All[:2] {
		p := bench.Scaled(p, 6)
		img, err := gen.Build(p.Src, gen.GCC12O3, p.Name)
		if err != nil {
			t.Fatal(err)
		}
		fp := func(jobs int) string {
			pl, err := core.LiftBinaryOpts(img, p.Inputs(),
				core.Options{Jobs: jobs, Lint: core.LintWarn, StaticRecover: true})
			if err != nil {
				t.Fatalf("%s: lift: %v", p.Name, err)
			}
			if err := pl.Refine(); err != nil {
				t.Fatalf("%s: refine: %v", p.Name, err)
			}
			return fingerprint(pl)
		}
		if a, b := fp(1), fp(8); a != b {
			t.Errorf("%s: -j1 and -j8 differ with static recovery", p.Name)
		}
	}
}

// Enabling static recovery must change the program cache key: its layouts
// and report differ from a plain run's.
func TestStaticRecoverDistinctCacheKey(t *testing.T) {
	cache, err := refcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	img, err := gen.Build(staticSrc, gen.GCC12O3, "static-cov")
	if err != nil {
		t.Fatal(err)
	}
	inputs := []machine.Input{staticTraceInput}
	opts := core.Options{Lint: core.LintWarn, Cache: cache, StaticRecover: true}
	cold, err := core.RecoverLayout(img, inputs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.FromCache {
		t.Fatal("first run reported a cache hit")
	}
	warm, err := core.RecoverLayout(img, inputs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.FromCache {
		t.Fatal("second static-recovery run missed the cache")
	}
	cold.Report.Sort()
	warm.Report.Sort()
	if warm.Report.String() != cold.Report.String() {
		t.Errorf("cached static report differs:\n%s\nvs\n%s", warm.Report, cold.Report)
	}
	plain, err := core.RecoverLayout(img, inputs, core.Options{Lint: core.LintWarn, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if plain.FromCache {
		t.Error("plain run hit the static-recovery cache entry")
	}
}
