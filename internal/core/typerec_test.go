package core_test

import (
	"fmt"
	"strings"
	"testing"

	"wytiwyg/internal/bench"
	"wytiwyg/internal/bench/progs"
	"wytiwyg/internal/core"
	"wytiwyg/internal/ir"
	"wytiwyg/internal/layout"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/opt"
	"wytiwyg/internal/refcache"
)

// typedRefinedAt runs the type-recovery-enabled pipeline on one benchmark.
func typedRefinedAt(t *testing.T, p progs.Program, jobs int) *core.Pipeline {
	t.Helper()
	return refinedAtOpts(t, p, core.Options{Jobs: jobs, Lint: core.LintWarn, Types: true})
}

// typedFingerprint renders the type-recovery outcomes a worker count could
// perturb: the typed report and per-function stats (minus wall-clock), on
// top of the usual IR and layout fingerprint.
func typedFingerprint(t *testing.T, p *core.Pipeline) string {
	t.Helper()
	var b strings.Builder
	b.WriteString(fingerprint(p))
	raw, err := p.TypeReport.JSON()
	if err != nil {
		t.Fatalf("typed report JSON: %v", err)
	}
	b.Write(raw)
	for _, st := range p.TypeStats {
		fmt.Fprintf(&b, "%s slots=%d typed=%d conflicts=%d\n",
			st.Func, st.Slots, st.TypedSlots, st.Conflicts)
	}
	return b.String()
}

// The type-recovery stage must obey the pipeline-wide determinism
// contract: the typed layout, report and stats are byte-identical across
// worker counts.
func TestTypeStageDeterministic(t *testing.T) {
	p := bench.Scaled(progs.All[0], 6)
	seq := typedRefinedAt(t, p, 1)
	par := typedRefinedAt(t, p, 8)
	if len(seq.TypeStats) == 0 {
		t.Fatal("type-recovery stage produced no stats")
	}
	if a, b := typedFingerprint(t, seq), typedFingerprint(t, par); a != b {
		t.Errorf("-j1 and -j8 typed outputs differ\n-- j1:\n%.2000s\n-- j8:\n%.2000s", a, b)
	}
	found := false
	for _, st := range seq.Times {
		if st.Stage == "typerec" {
			found = true
		}
	}
	if !found {
		t.Error("no typerec stage recorded in Times")
	}
}

// Over the benchmark corpus the inference must hit the accuracy bar
// against the compiler's declared slot types: precision >= 0.9 (claims
// are almost never wrong; the taint demotions keep unattributable
// accesses from poisoning commits into unsound ones).
func TestTypeAccuracyCorpus(t *testing.T) {
	corpus := progs.All
	if testing.Short() {
		corpus = corpus[:3]
	}
	for _, prog := range corpus {
		p := bench.Scaled(prog, 6)
		pl := typedRefinedAt(t, p, 0)
		img, err := gen.Build(p.Src, gen.GCC12O3, p.Name)
		if err != nil {
			t.Fatalf("%s: build: %v", p.Name, err)
		}
		if img.TypedTruth == nil {
			t.Fatalf("%s: image carries no type ground truth", p.Name)
		}
		acc := layout.CompareTyped(img.TypedTruth, pl.Typed)
		if acc.Claims == 0 {
			t.Errorf("%s: no typed claims on matching slots", p.Name)
			continue
		}
		if acc.Precision() < 0.9 {
			t.Errorf("%s: typed precision %.3f (%d claims, %d truth slots), want >= 0.9",
				p.Name, acc.Precision(), acc.Claims, acc.TruthSlots)
		}
		t.Logf("%s: precision %.3f recall %.3f (%d claims, %d truth slots)",
			p.Name, acc.Precision(), acc.Recall(), acc.Claims, acc.TruthSlots)
	}
}

// promotesMoreSrc keeps an 8-byte array live as one recovered slot (the
// accesses all derive from one base pointer, so symbolization merges
// them) while every access is at a constant offset — exactly the shape
// mem2reg alone cannot promote (the slot is wider than a register) but
// typed splitting can.
const promotesMoreSrc = `
extern int printf(char *fmt, ...);
extern int input_int(int i);

int work(int n) {
	int pair[2];
	int *p = pair;
	p[0] = n;
	p[1] = n * 3;
	return p[0] + p[1];
}

int main() {
	int n = input_int(0);
	printf("%d\n", work(n));
	return 0;
}
`

// Typed slot splitting must strictly increase the optimizer's promotion
// count on a workload whose multi-field slot is only ever accessed at
// constant offsets.
func TestTypedSplittingPromotesMore(t *testing.T) {
	count := func(pr *layout.Program) int {
		n := 0
		for _, fr := range pr.Frames {
			n += len(fr.Vars)
		}
		return n
	}
	promoted := func(types bool) int {
		img, err := gen.Build(promotesMoreSrc, gen.GCC12O3, "pair")
		if err != nil {
			t.Fatal(err)
		}
		p, err := core.LiftBinaryOpts(img, []machine.Input{{Ints: []int32{5}}},
			core.Options{Lint: core.LintWarn, Types: types})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Refine(); err != nil {
			t.Fatal(err)
		}
		return count(opt.PipelineWith(p.Mod, opt.PipelineOpts{Typed: p.TypedInfo()}))
	}
	base, typed := promoted(false), promoted(true)
	if typed <= base {
		t.Errorf("typed splitting promoted %d slots, baseline %d; want strictly more", typed, base)
	}
}

// A warm cache serves a typed run from its program key, and the key is
// distinct from the plain run's: enabling type recovery must not reuse a
// report computed without its typed-conflict findings.
func TestTypedWarmCacheDistinctKey(t *testing.T) {
	cache, err := refcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := bench.Scaled(progs.All[0], 6)
	img, err := gen.Build(p.Src, gen.GCC12O3, p.Name)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Lint: core.LintWarn, Cache: cache, Types: true}
	cold, err := core.RecoverLayout(img, p.Inputs(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.FromCache {
		t.Fatal("first run reported a cache hit")
	}
	warm, err := core.RecoverLayout(img, p.Inputs(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.FromCache {
		t.Fatal("second typed run missed the cache")
	}
	cold.Report.Sort()
	warm.Report.Sort()
	if warm.Report.String() != cold.Report.String() {
		t.Errorf("cached typed report differs:\n%s\nvs\n%s", warm.Report, cold.Report)
	}
	// Disabling type recovery must change the key: the recorded report
	// includes typed-conflict findings the plain pipeline never computes.
	plain, err := core.RecoverLayout(img, p.Inputs(),
		core.Options{Lint: core.LintWarn, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if plain.FromCache {
		t.Error("plain run hit the typed run's cache entry")
	}
}

// An irreconcilable-width slot must surface as a typed-conflict warning
// in the pipeline report when linting is on.
func TestTypedConflictFinding(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("clash", 0x1000)
	f.NumRet = 1
	b := f.NewBlock(0)
	m.Entry = f
	a := f.NewValue(ir.OpAlloca)
	a.AllocSize = 4
	a.Name = "x"
	a.Const = -4
	b.Append(a)
	k := f.NewValue(ir.OpConst)
	k.Const = 7
	b.Append(k)
	st4 := f.NewValue(ir.OpStore, a, k)
	st4.Size = 4
	b.Append(st4)
	st1 := f.NewValue(ir.OpStore, a, k)
	st1.Size = 1
	b.Append(st1)
	b.Append(f.NewValue(ir.OpRet, k))

	p := &core.Pipeline{Mod: m, Types: true, Lint: core.LintWarn}
	if err := p.RefineTypes(); err != nil {
		t.Fatalf("RefineTypes: %v", err)
	}
	found := false
	for _, d := range p.Report.Diags {
		if d.Check == "typed-conflict" && strings.Contains(d.Msg, "slot x") {
			found = true
		}
	}
	if !found {
		t.Errorf("no typed-conflict finding for slot x in report:\n%s", p.Report)
	}
	if len(p.TypeStats) == 0 || p.TypeStats[0].Conflicts == 0 {
		t.Errorf("stats recorded no conflict: %+v", p.TypeStats)
	}
}
