package core_test

import (
	"strings"
	"testing"

	"wytiwyg/internal/asm"
	"wytiwyg/internal/core"
	"wytiwyg/internal/irexec"
	"wytiwyg/internal/machine"
)

// A binary that faults during tracing surfaces the fault as a lift error:
// WYTIWYG can only lift what it can execute.
func TestLiftBinaryTracingFault(t *testing.T) {
	src := `
main:
    movi eax, 0
    load4 ecx, [eax]     ; null deref
    halt
`
	img, err := asm.Assemble("crash", src, "")
	if err != nil {
		t.Fatal(err)
	}
	_, err = core.LiftBinary(img, nil)
	if err == nil || !strings.Contains(err.Error(), "tracing") {
		t.Errorf("err = %v, want tracing error", err)
	}
}

// Inputs that diverge before reaching shared code still merge into one
// CFG; refinement must observe both paths.
func TestLiftBinaryMultipleInputs(t *testing.T) {
	src := `
main:
    push ebp
    mov ebp, esp
    call @input_int
    cmpi eax, 5
    jlt .small
    muli eax, 2
    jmp .out
.small:
    addi eax, 100
.out:
    pop ebp
    push eax
    call @exit
    halt
`
	img, err := asm.Assemble("branchy", src, "")
	if err != nil {
		t.Fatal(err)
	}
	inputs := []machine.Input{
		{Ints: []int32{3}},  // takes .small
		{Ints: []int32{50}}, // takes the multiply path
	}
	p, err := core.LiftBinary(img, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Refine(); err != nil {
		t.Fatal(err)
	}
	// Both sides of the branch must be present (no traps on either path).
	for i, want := range []int32{103, 100} {
		r, err := irexec.Run(p.Mod, inputs[i], nil, nil)
		if err != nil {
			t.Fatalf("input %d: %v", i, err)
		}
		if r.ExitCode != want {
			t.Errorf("input %d: exit = %d, want %d", i, r.ExitCode, want)
		}
	}
}
