// Package core drives WYTIWYG's end-to-end recompilation pipeline
// (Figure 4 of the paper): trace the input binary under the provided
// inputs, recover its CFG and functions, lift to IR, and then run the
// refinement-lifting loop — each refinement instrumenting the current IR,
// re-executing the inputs, and transforming the IR with the analysis
// results — until the program is fully symbolized and can be recompiled.
package core

import (
	"fmt"
	"io"

	"wytiwyg/internal/analysis"
	"wytiwyg/internal/funcrec"
	"wytiwyg/internal/ir"
	"wytiwyg/internal/irexec"
	"wytiwyg/internal/layout"
	"wytiwyg/internal/lifter"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/obj"
	"wytiwyg/internal/regsave"
	"wytiwyg/internal/stackref"
	"wytiwyg/internal/symbolize"
	"wytiwyg/internal/tracer"
	"wytiwyg/internal/varargs"
	"wytiwyg/internal/vartrack"
)

// LintMode selects how the post-refinement verification stage behaves.
type LintMode int

// Verification modes: LintOff skips the stage, LintWarn runs every check
// and keeps the findings in Pipeline.Report, LintFail additionally turns
// proven violations (Error findings) into a pipeline failure.
const (
	LintOff LintMode = iota
	LintWarn
	LintFail
)

// Pipeline carries the state of one recompilation.
type Pipeline struct {
	Img    *obj.Image
	Inputs []machine.Input

	// Lint selects the post-refinement verification stage's behaviour.
	Lint LintMode
	// Report accumulates the verification findings (nil until a lint-enabled
	// refinement stage has run).
	Report *analysis.Report
	// Heights holds the per-function stack-height facts captured after the
	// stack-reference refinement — they must be taken before symbolization
	// erases the ESP parameters they are phrased in.
	Heights map[*ir.Func]analysis.HeightFacts

	Trace *tracer.Trace
	CFG   *tracer.CFG
	Rec   *funcrec.Result
	Mod   *ir.Module

	// RegClasses is the saved-register classification after the first
	// refinement.
	RegClasses regsave.Classes
	// SPOffsets holds each function's direct stack references after the
	// stack-reference refinement.
	SPOffsets map[*ir.Func]stackref.Offsets
	// VarResult is the raw object-bounds analysis output.
	VarResult *vartrack.Result
	// Recovered is the symbolized stack layout (Figure 7's subject).
	Recovered *layout.Program
}

// LiftBinary performs the front half of the pipeline: dynamic tracing, CFG
// merge, function recovery, and lifting to IR.
func LiftBinary(img *obj.Image, inputs []machine.Input) (*Pipeline, error) {
	if len(inputs) == 0 {
		inputs = []machine.Input{{}}
	}
	p := &Pipeline{Img: img, Inputs: inputs}
	p.Trace = tracer.New(img)
	if err := p.Trace.RunAll(inputs, io.Discard); err != nil {
		return nil, fmt.Errorf("core: tracing: %w", err)
	}
	cfg, err := p.Trace.BuildCFG()
	if err != nil {
		return nil, fmt.Errorf("core: cfg: %w", err)
	}
	p.CFG = cfg
	rec, err := funcrec.Recover(cfg)
	if err != nil {
		return nil, fmt.Errorf("core: function recovery: %w", err)
	}
	p.Rec = rec
	mod, err := lifter.Lift(img, cfg, rec)
	if err != nil {
		return nil, fmt.Errorf("core: lifting: %w", err)
	}
	p.Mod = mod
	return p, nil
}

// runAll executes the current module under every input with a tracer
// attached, discarding program output. Tracers that need interpreter access
// (memory inspection) implement Bind.
func (p *Pipeline) runAll(tr irexec.Tracer) error {
	for i, input := range p.Inputs {
		ip, err := irexec.New(p.Mod, input, io.Discard)
		if err != nil {
			return fmt.Errorf("core: refinement run, input %d: %w", i, err)
		}
		ip.Tr = tr
		if b, ok := tr.(interface{ Bind(*irexec.Interp) }); ok {
			b.Bind(ip)
		}
		if _, err := ip.Run(); err != nil {
			return fmt.Errorf("core: refinement run, input %d: %w", i, err)
		}
	}
	return nil
}

// RefineRegSave runs the saved-register refinement (§4.1): dynamic
// classification followed by the signature rewrite.
func (p *Pipeline) RefineRegSave() error {
	tr := regsave.NewTracer()
	if err := p.runAll(tr); err != nil {
		return err
	}
	p.RegClasses = tr.Classify(p.Mod)
	if err := regsave.Apply(p.Mod, p.RegClasses); err != nil {
		return fmt.Errorf("core: regsave: %w", err)
	}
	return nil
}

// RefineVarArgs recovers exact signatures for variadic library call sites
// (§5.2) and lifts them to explicit arguments.
func (p *Pipeline) RefineVarArgs() error {
	tr := varargs.NewTracer()
	if err := p.runAll(tr); err != nil {
		return err
	}
	if err := varargs.Apply(p.Mod, tr.Counts); err != nil {
		return fmt.Errorf("core: varargs: %w", err)
	}
	return nil
}

// RefineStackRef folds constant stack displacements into canonical
// sp0+offset form (the static part of §4.1). With linting enabled it also
// captures the independent stack-height facts and cross-checks them
// against the displacements just canonicalized.
func (p *Pipeline) RefineStackRef() error {
	offs, err := stackref.Apply(p.Mod)
	if err != nil {
		return fmt.Errorf("core: stackref: %w", err)
	}
	p.SPOffsets = offs
	if p.Lint == LintOff {
		return nil
	}
	p.ensureReport()
	p.Heights = make(map[*ir.Func]analysis.HeightFacts, len(p.Mod.Funcs))
	for _, f := range p.Mod.Funcs {
		facts := analysis.Heights(f)
		p.Heights[f] = facts
		analysis.CheckHeights(f, facts, p.SPOffsets[f], p.Report)
	}
	return p.lintGate("stackref")
}

func (p *Pipeline) ensureReport() {
	if p.Report == nil {
		p.Report = &analysis.Report{}
	}
}

// lintGate fails the pipeline when verification proved a violation and the
// mode asks for failure.
func (p *Pipeline) lintGate(stage string) error {
	if p.Lint == LintFail && p.Report.Errors() > 0 {
		p.Report.Sort()
		return fmt.Errorf("core: %s verification found %d proven violation(s):\n%s",
			stage, p.Report.Errors(), p.Report)
	}
	return nil
}

// RefineSymbolize runs the object-bounds refinement (§4.2): the vartrack
// runtime observes every input, then symbolization replaces the emulated
// stack with explicit stack objects. It returns the recovered layout.
func (p *Pipeline) RefineSymbolize() (*layout.Program, error) {
	tr := vartrack.NewTracer(p.SPOffsets)
	if err := p.runAll(tr); err != nil {
		return nil, err
	}
	p.VarResult = tr.Result()
	prog, err := symbolize.Apply(p.Mod, p.SPOffsets, p.VarResult)
	if err != nil {
		return nil, fmt.Errorf("core: symbolize: %w", err)
	}
	p.Recovered = prog
	if p.Lint != LintOff {
		p.ensureReport()
		analysis.LintModule(p.Mod, p.Recovered, p.Heights, p.Report)
		if err := p.lintGate("symbolize"); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

// Refine runs the complete refinement-lifting sequence on a lifted module.
func (p *Pipeline) Refine() error {
	if err := p.RefineRegSave(); err != nil {
		return err
	}
	if err := p.RefineVarArgs(); err != nil {
		return err
	}
	if err := p.RefineStackRef(); err != nil {
		return err
	}
	if _, err := p.RefineSymbolize(); err != nil {
		return err
	}
	return nil
}
