// Package core drives WYTIWYG's end-to-end recompilation pipeline
// (Figure 4 of the paper): trace the input binary under the provided
// inputs, recover its CFG and functions, lift to IR, and then run the
// refinement-lifting loop — each refinement instrumenting the current IR,
// re-executing the inputs, and transforming the IR with the analysis
// results — until the program is fully symbolized and can be recompiled.
//
// Since the refinement observations are per-input and the refinement
// transformations are per-function, both halves of the loop run over a
// bounded worker pool (Options.Jobs): refinement runs fork one tracer per
// input and join the observations in input order, and the canonicalization,
// symbolization and verification stages process functions concurrently
// with results collected in module function order. The merge discipline
// makes every output — IR, recovered layout, lint report — byte-identical
// regardless of the worker count. Results are additionally memoized in a
// content-addressed cache (Options.Cache, package refcache), so repeating
// a run on an unchanged binary and input set skips the pipeline entirely.
package core

import (
	"fmt"
	"io"
	"sort"
	"time"

	"wytiwyg/internal/analysis"
	"wytiwyg/internal/coldrec"
	"wytiwyg/internal/funcrec"
	"wytiwyg/internal/ir"
	"wytiwyg/internal/irexec"
	"wytiwyg/internal/layout"
	"wytiwyg/internal/lifter"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/obj"
	"wytiwyg/internal/opt"
	"wytiwyg/internal/par"
	"wytiwyg/internal/refcache"
	"wytiwyg/internal/regsave"
	"wytiwyg/internal/stackref"
	"wytiwyg/internal/staticsym"
	"wytiwyg/internal/symbolize"
	"wytiwyg/internal/tracer"
	"wytiwyg/internal/typerec"
	"wytiwyg/internal/varargs"
	"wytiwyg/internal/vartrack"
	"wytiwyg/internal/vsa"
)

// LintMode selects how the post-refinement verification stage behaves.
type LintMode int

// Verification modes: LintOff skips the stage, LintWarn runs every check
// and keeps the findings in Pipeline.Report, LintFail additionally turns
// proven violations (Error findings) into a pipeline failure.
const (
	LintOff LintMode = iota
	LintWarn
	LintFail
)

// Options configures a pipeline run.
type Options struct {
	// Jobs bounds the worker pool used for refinement runs and
	// per-function passes; values < 1 mean one worker per CPU.
	Jobs int
	// Lint selects the post-refinement verification behaviour.
	Lint LintMode
	// Cache, when non-nil, memoizes refinement results across runs.
	Cache *refcache.Cache
	// VSA enables the value-set analysis stage after symbolization: every
	// function's recovered layout is verified against a static
	// over-approximation of its pointer values, and the per-function
	// results are kept for the optimizer's alias oracle.
	VSA bool
	// Types enables the type-recovery stage after symbolization (and after
	// VSA when both are on): every recovered frame slot gets a type from
	// the small lattice in package layout, inferred from access widths,
	// strided-interval facts and cross-call unification. The typed layout
	// and report are kept on the pipeline, and the per-function results
	// drive the optimizer's typed slot splitting.
	Types bool
	// StaticRecover enables the cold-code recovery stage: functions the
	// traces never executed are statically disassembled, lifted alongside
	// the traced code, and admitted with a recovered layout only when VSA
	// proves every frame access safe (otherwise they degrade to trap
	// stubs, like any other untraced path).
	StaticRecover bool
	// Stream selects the streaming trace→lift pipeline: emulator
	// producers push block records onto a bounded channel, a worker pool
	// decodes and merges them, and refinement starts on a
	// coverage-complete input prefix while later inputs still trace
	// (refine-ahead, validated by trace digest). Output is byte-identical
	// to the phase-barriered pipeline at every worker count; see
	// ARCHITECTURE.md §3.
	Stream bool
	// StreamBuf overrides the streaming record-channel capacity
	// (0 means stream.DefaultBuf). It bounds producer run-ahead, never
	// the output.
	StreamBuf int
	// Observer, when non-nil, receives a start and a finish event for
	// every pipeline stage. It may be called concurrently from several
	// goroutines (streaming mode overlaps stages) and must be
	// goroutine-safe; events are observability only and never influence
	// pipeline output.
	Observer func(StageEvent)
}

// StageEvent is one pipeline-stage lifecycle notification delivered to
// Options.Observer.
type StageEvent struct {
	// Stage is the stage name as recorded in Pipeline.Times ("trace",
	// "cfg", "funcrec", "coldrec", "lift", "regsave", "varargs",
	// "stackref", "symbolize", "vsa", "typerec").
	Stage string
	// Action is "start" or "finish".
	Action string
}

// StreamStats summarizes a streaming run for reporting and benchmarks.
type StreamStats struct {
	// Records and Blocks count the records that crossed the bounded
	// channel and the distinct block records among them.
	Records, Blocks int
	// Closes counts the resolved function-close events.
	Closes int
	// Speculated reports that a refine-ahead pipeline was launched on an
	// input prefix; Adopted that its trace digest matched the final merge
	// and its results were kept.
	Speculated, Adopted bool
}

// ColdStat records one cold candidate's admission outcome.
type ColdStat struct {
	// Func is the function name.
	Func string
	// Entry is the function's entry address.
	Entry uint32
	// Admitted reports whether the function kept its recovered layout.
	Admitted bool
	// Reason explains a rejection (empty when admitted).
	Reason string
	// Elapsed is the admission analysis's wall-clock cost.
	Elapsed time.Duration
	// Checked, CrossSlot and Unbounded mirror vsa.CheckStats for the
	// admission run.
	Checked, CrossSlot, Unbounded int
}

// TypeStat records one function's type-recovery outcome.
type TypeStat struct {
	// Func is the function name.
	Func string
	// Elapsed is the inference's wall-clock cost (excluding unification,
	// which is a single cross-function pass).
	Elapsed time.Duration
	// Slots counts the function's layout slots; TypedSlots those that got
	// a committed type; Conflicts the irreconcilable-evidence events.
	Slots, TypedSlots, Conflicts int
}

// VSAStat records one function's value-set analysis outcome.
type VSAStat struct {
	// Func is the function name.
	Func string
	// Elapsed is the analysis fixpoint's wall-clock cost.
	Elapsed time.Duration
	// Checked, CrossSlot and OutOfFrame mirror vsa.CheckStats.
	Checked, CrossSlot, OutOfFrame int
}

// StageTime records one pipeline stage's wall-clock cost.
type StageTime struct {
	Stage   string        // stage name (see StageEvent.Stage)
	Elapsed time.Duration // the stage's wall-clock cost
}

// Pipeline carries the state of one recompilation.
type Pipeline struct {
	Img    *obj.Image      // the binary under recompilation
	Inputs []machine.Input // the trace/refinement input set

	// Jobs bounds the worker pool (see Options.Jobs).
	Jobs int
	// Cache memoizes refinement results across runs (nil disables).
	Cache *refcache.Cache
	// FromCache marks a pipeline whose results were served entirely from
	// the cache; the trace/IR fields are nil on such a pipeline.
	FromCache bool

	// Stream mirrors the option of the same name.
	Stream bool
	// StreamBuf mirrors the option of the same name.
	StreamBuf int
	// StreamStats summarizes the streaming run (nil in barriered mode).
	StreamStats *StreamStats
	// Observer mirrors Options.Observer (may be nil).
	Observer func(StageEvent)
	// refined marks that the refinement sequence has already run (the
	// streaming scheduler refines ahead), making Refine a no-op.
	refined bool

	// Lint selects the post-refinement verification stage's behaviour.
	Lint LintMode
	// VSA enables the post-symbolization value-set analysis stage.
	VSA bool
	// Types enables the post-symbolization type-recovery stage (see Options).
	Types bool
	// StaticRecover enables the cold-code recovery stage (see Options).
	StaticRecover bool
	// Cold is the static discovery result (nil unless StaticRecover).
	Cold *coldrec.Result
	// ColdStats holds the per-candidate admission outcomes in entry order
	// (nil until the admission stage has run).
	ColdStats []ColdStat
	// VSAStats holds the per-function value-set analysis outcomes, in
	// module function order (nil until the VSA stage has run).
	VSAStats []VSAStat
	// TypeStats holds the per-function type-recovery outcomes, in module
	// function order (nil until the typerec stage has run).
	TypeStats []TypeStat
	// Typed is the recovered typed layout — each frame slot with its
	// inferred type (nil unless Options.Types).
	Typed *layout.TypedProgram
	// TypeReport is the rendered typed-frame report, the payload of
	// `wytiwyg types` (nil unless Options.Types).
	TypeReport *typerec.Report
	// typeResults indexes the per-function inference results for the
	// optimizer's typed-info factory.
	typeResults map[*ir.Func]*typerec.FuncResult
	// Report accumulates the verification findings (nil until a lint-enabled
	// refinement stage has run).
	Report *analysis.Report
	// Heights holds the per-function stack-height facts captured after the
	// stack-reference refinement — they must be taken before symbolization
	// erases the ESP parameters they are phrased in.
	Heights map[*ir.Func]analysis.HeightFacts

	// Degraded lists functions whose refinement failed and that were
	// replaced by trap stubs instead of failing the binary, keyed by
	// function name with the causing error.
	Degraded map[string]error

	// FuncCacheHits counts the functions whose content-addressed cache key
	// hit during this run (their per-function results were reused instead
	// of recomputed). Unlike the shared Cache handle's Stats — which
	// aggregate every concurrent pipeline sharing the handle — these
	// counters are per-run, which is what a daemon needs to report an
	// honest per-request hit rate for incremental re-lifts.
	FuncCacheHits int
	// FuncCacheMisses counts the functions whose key missed and whose
	// results were computed and recorded this run (see FuncCacheHits).
	FuncCacheMisses int

	// Times records per-stage wall-clock costs in execution order.
	Times []StageTime

	Trace *tracer.Trace   // merged dynamic trace
	CFG   *tracer.CFG     // recovered control-flow graph
	Rec   *funcrec.Result // recovered function partition
	Mod   *ir.Module      // lifted (then refined) IR

	// RegClasses is the saved-register classification after the first
	// refinement.
	RegClasses regsave.Classes
	// SPOffsets holds each function's direct stack references after the
	// stack-reference refinement.
	SPOffsets map[*ir.Func]stackref.Offsets
	// VarResult is the raw object-bounds analysis output.
	VarResult *vartrack.Result
	// Recovered is the symbolized stack layout (Figure 7's subject).
	Recovered *layout.Program
}

// jobs returns the effective worker count.
func (p *Pipeline) jobs() int { return par.N(p.Jobs) }

// observe delivers one stage event to the configured observer.
func (p *Pipeline) observe(stage, action string) {
	if p.Observer != nil {
		p.Observer(StageEvent{Stage: stage, Action: action})
	}
}

// timed runs one stage, records its wall-clock cost and notifies the
// observer.
func (p *Pipeline) timed(stage string, fn func() error) error {
	p.observe(stage, "start")
	start := time.Now()
	err := fn()
	p.Times = append(p.Times, StageTime{Stage: stage, Elapsed: time.Since(start)})
	p.observe(stage, "finish")
	return err
}

// LiftBinary performs the front half of the pipeline: dynamic tracing, CFG
// merge, function recovery, and lifting to IR. It is LiftBinaryOpts with
// default options.
func LiftBinary(img *obj.Image, inputs []machine.Input) (*Pipeline, error) {
	return LiftBinaryOpts(img, inputs, Options{Jobs: 1})
}

// newPipeline builds an empty pipeline carrying the option set.
func newPipeline(img *obj.Image, inputs []machine.Input, opts Options) *Pipeline {
	return &Pipeline{Img: img, Inputs: inputs, Jobs: opts.Jobs, Lint: opts.Lint,
		Cache: opts.Cache, VSA: opts.VSA, Types: opts.Types,
		StaticRecover: opts.StaticRecover,
		Stream:        opts.Stream, StreamBuf: opts.StreamBuf, Observer: opts.Observer}
}

// LiftBinaryOpts performs the front half of the pipeline with explicit
// options: the per-input traces run over the worker pool and merge in
// input order, so the trace — and everything derived from it — is
// independent of the worker count. With Options.Stream set the trace
// streams through the bounded-channel pipeline instead, overlapping
// tracing with lifting and refinement (see liftStreamed); the returned
// pipeline may then already be refined, which Refine detects.
func LiftBinaryOpts(img *obj.Image, inputs []machine.Input, opts Options) (*Pipeline, error) {
	if len(inputs) == 0 {
		inputs = []machine.Input{{}}
	}
	if opts.Stream {
		return liftStreamed(img, inputs, opts)
	}
	p := newPipeline(img, inputs, opts)
	err := p.timed("trace", func() error {
		p.Trace = tracer.New(img)
		return p.Trace.RunAllJobs(inputs, io.Discard, p.jobs())
	})
	if err != nil {
		return nil, fmt.Errorf("core: tracing: %w", err)
	}
	if err := p.buildFromTrace(); err != nil {
		return nil, err
	}
	return p, nil
}

// buildFromTrace runs the trace-derived build stages — CFG construction,
// function recovery, optional cold-code discovery, and lifting — on
// p.Trace. It is shared by the barriered path, the streaming path and the
// streaming scheduler's refine-ahead speculation: everything below here is
// a pure function of the trace's fact sets (see tracer.Digest).
func (p *Pipeline) buildFromTrace() error {
	err := p.timed("cfg", func() error {
		cfg, err := p.Trace.BuildCFG()
		p.CFG = cfg
		return err
	})
	if err != nil {
		return fmt.Errorf("core: cfg: %w", err)
	}
	err = p.timed("funcrec", func() error {
		rec, err := funcrec.Recover(p.CFG)
		p.Rec = rec
		return err
	})
	if err != nil {
		return fmt.Errorf("core: function recovery: %w", err)
	}
	if p.StaticRecover {
		_ = p.timed("coldrec", func() error {
			p.Cold = coldrec.Discover(p.Img, p.Trace, p.Rec)
			coldrec.Merge(p.CFG, p.Rec, p.Cold)
			return nil
		})
	}
	err = p.timed("lift", func() error {
		mod, err := lifter.LiftJobs(p.Img, p.CFG, p.Rec, p.jobs())
		if err != nil && p.Cold != nil && len(p.Cold.Cands) > 0 {
			// All-or-nothing safety net: if the merged module does not
			// lift, roll the cold code back, reject every candidate with
			// the cause, and lift the traced-only module.
			coldrec.Unmerge(p.CFG, p.Rec, p.Cold)
			for _, c := range p.Cold.Cands {
				p.Cold.Rejected = append(p.Cold.Rejected, coldrec.Rejection{
					Entry: c.Entry, Name: c.Name,
					Reason: fmt.Sprintf("lifting the merged module failed: %v", err),
				})
			}
			p.Cold.Cands = nil
			sort.Slice(p.Cold.Rejected, func(i, j int) bool {
				return p.Cold.Rejected[i].Entry < p.Cold.Rejected[j].Entry
			})
			mod, err = lifter.LiftJobs(p.Img, p.CFG, p.Rec, p.jobs())
		}
		p.Mod = mod
		return err
	})
	if err != nil {
		return fmt.Errorf("core: lifting: %w", err)
	}
	return nil
}

// coldCands returns the accepted cold candidates, or nil.
func (p *Pipeline) coldCands() []*coldrec.Candidate {
	if p.Cold == nil {
		return nil
	}
	return p.Cold.Cands
}

// forkable is implemented by refinement tracers whose observations can be
// collected per input and merged afterwards.
type forkable interface {
	irexec.Tracer
	Fork() irexec.Tracer
	Join(irexec.Tracer)
}

// runAll executes the current module under every input with a tracer
// attached, discarding program output. Tracers that implement Fork/Join
// observe each input on a private fork — the forks run concurrently over
// the worker pool and join in input order, so the merged observations are
// identical for every worker count (including 1: the sequential path also
// forks, keeping the observation semantics worker-count independent).
// Tracers that need interpreter access (memory inspection) implement Bind.
func (p *Pipeline) runAll(tr irexec.Tracer) error {
	fk, ok := tr.(forkable)
	if !ok {
		for i := range p.Inputs {
			if err := p.runOne(i, tr); err != nil {
				return err
			}
		}
		return nil
	}
	subs, err := par.Map(p.jobs(), len(p.Inputs), func(i int) (irexec.Tracer, error) {
		sub := fk.Fork()
		if err := p.runOne(i, sub); err != nil {
			return nil, err
		}
		return sub, nil
	})
	if err != nil {
		return err
	}
	for _, sub := range subs {
		fk.Join(sub)
	}
	return nil
}

// runOne executes the module under one input with the given tracer.
func (p *Pipeline) runOne(i int, tr irexec.Tracer) error {
	ip, err := irexec.New(p.Mod, p.Inputs[i], io.Discard)
	if err != nil {
		return fmt.Errorf("core: refinement run, input %d: %w", i, err)
	}
	ip.Tr = tr
	if b, ok := tr.(interface{ Bind(*irexec.Interp) }); ok {
		b.Bind(ip)
	}
	if _, err := ip.Run(); err != nil {
		return fmt.Errorf("core: refinement run, input %d: %w", i, err)
	}
	return nil
}

// RefineRegSave runs the saved-register refinement (§4.1): dynamic
// classification followed by the signature rewrite.
func (p *Pipeline) RefineRegSave() error {
	tr := regsave.NewTracer()
	if err := p.runAll(tr); err != nil {
		return err
	}
	// Cold functions never execute during refinement runs (the replayed
	// inputs are exactly the traced ones), so their register classes come
	// from the static liveness estimate instead of traced evidence.
	for _, c := range p.coldCands() {
		if f := p.Mod.FuncAt(c.Entry); f != nil {
			tr.SeedStatic(f, c.LiveIn)
		}
	}
	p.RegClasses = tr.Classify(p.Mod)
	if err := regsave.Apply(p.Mod, p.RegClasses); err != nil {
		return fmt.Errorf("core: regsave: %w", err)
	}
	return nil
}

// RefineVarArgs recovers exact signatures for variadic library call sites
// (§5.2) and lifts them to explicit arguments.
func (p *Pipeline) RefineVarArgs() error {
	tr := varargs.NewTracer()
	if err := p.runAll(tr); err != nil {
		return err
	}
	if err := varargs.Apply(p.Mod, tr.Counts); err != nil {
		return fmt.Errorf("core: varargs: %w", err)
	}
	return nil
}

// degrade replaces a function whose refinement failed with a trap stub: the
// signature survives (callers keep working) but the body becomes a single
// trap, exactly like the lifter's untraced paths — executing the function
// in the recompiled binary aborts, everything else is unaffected. The
// failure is recorded in Degraded and, when linting, as a warning.
func (p *Pipeline) degrade(f *ir.Func, cause error) {
	if p.Degraded == nil {
		p.Degraded = make(map[string]error)
	}
	p.Degraded[f.Name] = cause
	f.Blocks = nil
	b := f.NewBlock(f.Addr)
	b.Append(f.NewValue(ir.OpTrap))
	if p.Lint != LintOff {
		p.ensureReport()
		p.Report.Addf("pipeline", analysis.Warn, f.Name, nil,
			"refinement failed (%v); function degraded to a trap stub", cause)
	}
}

// RefineStackRef folds constant stack displacements into canonical
// sp0+offset form (the static part of §4.1), processing functions over the
// worker pool. A function whose canonicalization fails is degraded to a
// trap stub instead of failing the binary; if a later refinement run still
// reaches such a function, that run reports the trap. With linting enabled
// the stage also captures the independent stack-height facts and
// cross-checks them against the displacements just canonicalized.
func (p *Pipeline) RefineStackRef() error {
	offs, funcErrs := stackref.ApplyJobs(p.Mod, p.jobs())
	for _, f := range p.Mod.Funcs {
		if err := funcErrs[f]; err != nil {
			p.degrade(f, err)
			offs[f] = stackref.Analyze(f)
		}
	}
	if err := ir.Verify(p.Mod); err != nil {
		return fmt.Errorf("core: stackref: %w", err)
	}
	p.SPOffsets = offs
	if p.Lint == LintOff {
		return nil
	}
	p.ensureReport()
	funcs := p.Mod.Funcs
	facts := make([]analysis.HeightFacts, len(funcs))
	reps := make([]analysis.Report, len(funcs))
	par.ForEach(p.jobs(), len(funcs), func(i int) error {
		facts[i] = analysis.Heights(funcs[i])
		analysis.CheckHeights(funcs[i], facts[i], p.SPOffsets[funcs[i]], &reps[i])
		return nil
	})
	p.Heights = make(map[*ir.Func]analysis.HeightFacts, len(funcs))
	for i, f := range funcs {
		p.Heights[f] = facts[i]
		p.Report.Merge(&reps[i])
	}
	return p.lintGate("stackref")
}

func (p *Pipeline) ensureReport() {
	if p.Report == nil {
		p.Report = &analysis.Report{}
	}
}

// lintGate fails the pipeline when verification proved a violation and the
// mode asks for failure.
func (p *Pipeline) lintGate(stage string) error {
	if p.Lint == LintFail && p.Report.Errors() > 0 {
		p.Report.Sort()
		return fmt.Errorf("core: %s verification found %d proven violation(s):\n%s",
			stage, p.Report.Errors(), p.Report)
	}
	return nil
}

// RefineSymbolize runs the object-bounds refinement (§4.2): the vartrack
// runtime observes every input (forked per input, joined in input order),
// then symbolization replaces the emulated stack with explicit stack
// objects, processing functions over the worker pool within each of its
// phases. It returns the recovered layout.
func (p *Pipeline) RefineSymbolize() (*layout.Program, error) {
	tr := vartrack.NewTracer(p.SPOffsets)
	if err := p.runAll(tr); err != nil {
		return nil, err
	}
	p.VarResult = tr.Result()
	p.injectColdVars()
	prog, err := symbolize.ApplyJobs(p.Mod, p.SPOffsets, p.VarResult, p.jobs())
	if err != nil {
		return nil, fmt.Errorf("core: symbolize: %w", err)
	}
	p.Recovered = prog
	p.admitCold()
	if p.Lint != LintOff {
		p.ensureReport()
		analysis.CheckModule(p.Mod, p.Report)
		p.lintFuncs()
		p.Report.Sort()
		if err := p.lintGate("symbolize"); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

// injectColdVars derives stack variables for the cold functions before
// symbolization. The dynamic object-bounds tracer never observed them (no
// input reaches cold code during refinement), so their variables come from
// the static symbolizer's per-function splitter — exactly the conservative
// reconstruction whose safety the admission stage then has to prove.
// Injected IDs continue after the dynamic tracer's (the maximum is
// iteration-order independent, and candidates are processed in entry
// order), keeping the result reproducible.
func (p *Pipeline) injectColdVars() {
	cands := p.coldCands()
	if len(cands) == 0 {
		return
	}
	id := 0
	for _, vars := range p.VarResult.ByFn {
		for _, sv := range vars {
			if sv.ID >= id {
				id = sv.ID + 1
			}
		}
	}
	for _, c := range cands {
		f := p.Mod.FuncAt(c.Entry)
		if f == nil {
			continue
		}
		if _, degraded := p.Degraded[f.Name]; degraded {
			continue
		}
		fo := p.SPOffsets[f]
		if fo == nil {
			continue
		}
		staticsym.BuildFuncVars(p.VarResult, f, fo, &id)
	}
}

// admitCold is the soundness gate for the statically recovered functions:
// each one is abstractly interpreted (over the worker pool; verdicts land
// in candidate entry order) and admitted only when every frame access is
// proven in-bounds and no stack object escapes. The rest degrade to trap
// stubs — with the reason recorded in Degraded and the report — and their
// frames leave the recovered layout.
func (p *Pipeline) admitCold() {
	cands := p.coldCands()
	if len(cands) == 0 {
		return
	}
	stats := make([]ColdStat, len(cands))
	par.ForEach(p.jobs(), len(cands), func(i int) error {
		c := cands[i]
		st := ColdStat{Func: c.Name, Entry: c.Entry}
		f := p.Mod.FuncAt(c.Entry)
		switch {
		case f == nil:
			st.Reason = "function missing after lifting"
		case p.Degraded[f.Name] != nil:
			st.Reason = p.Degraded[f.Name].Error()
		default:
			start := time.Now()
			res := vsa.Admit(f)
			st.Elapsed = time.Since(start)
			st.Admitted = res.OK
			st.Reason = res.Reason
			st.Checked = res.Stats.Checked
			st.CrossSlot = res.Stats.CrossSlot
			st.Unbounded = res.Stats.Unbounded
		}
		stats[i] = st
		return nil
	})
	for i := range stats {
		if stats[i].Admitted {
			continue
		}
		f := p.Mod.FuncAt(cands[i].Entry)
		if f == nil {
			continue
		}
		if _, already := p.Degraded[f.Name]; !already {
			p.degrade(f, fmt.Errorf("static recovery failed: %s", stats[i].Reason))
		}
		delete(p.Recovered.Frames, f.Name)
		// The height facts were captured from the full statically lifted
		// body; the function is a trap stub now, so auditing them against
		// the deleted frame would report spurious coverage errors.
		delete(p.Heights, f)
	}
	p.ColdStats = stats
}

// lintFuncs runs the per-function verification checks over the worker pool
// and merges the findings in module function order. With a cache attached,
// a function whose content-addressed key hits reuses its recorded findings
// and skips the checks; misses are computed and recorded.
func (p *Pipeline) lintFuncs() {
	funcs := p.Mod.Funcs
	reps := make([]analysis.Report, len(funcs))
	keys := make([]refcache.Key, len(funcs))
	hit := make([]bool, len(funcs))
	par.ForEach(p.jobs(), len(funcs), func(i int) error {
		f := funcs[i]
		if p.Cache != nil {
			keys[i] = p.funcKeyFor(f.Name, f.Addr)
			if e, ok := p.Cache.GetFunc(keys[i]); ok {
				reps[i].Diags = e.Diags
				hit[i] = true
				return nil
			}
		}
		analysis.LintFunc(f, p.Recovered.Frame(f.Name), p.Heights[f], &reps[i])
		return nil
	})
	for i, f := range funcs {
		p.Report.Merge(&reps[i])
		if p.Cache != nil {
			if hit[i] {
				p.FuncCacheHits++
			} else {
				p.FuncCacheMisses++
			}
		}
		if p.Cache != nil && !hit[i] {
			var vars []layout.Var
			if fr := p.Recovered.Frame(f.Name); fr != nil {
				vars = fr.Vars
			}
			p.Cache.PutFunc(keys[i], &refcache.FuncEntry{
				Func:  f.Name,
				Frame: vars,
				Diags: reps[i].Diags,
			})
		}
	}
}

// RefineVSA runs the value-set analysis stage: every function gets a
// whole-function abstract interpretation whose fixpoint verifies the
// recovered layout (cross-slot and out-of-frame accesses) and records the
// per-function analysis cost. Functions are processed over the worker
// pool with findings and stats merged in module function order, so the
// output is worker-count independent like every other stage. The stage is
// a no-op unless Options.VSA was set.
func (p *Pipeline) RefineVSA() error {
	if !p.VSA {
		return nil
	}
	funcs := p.Mod.Funcs
	stats := make([]VSAStat, len(funcs))
	reps := make([]analysis.Report, len(funcs))
	par.ForEach(p.jobs(), len(funcs), func(i int) error {
		f := funcs[i]
		fr := vsa.Analyze(f)
		st := vsa.Check(fr, &reps[i])
		stats[i] = VSAStat{
			Func:    f.Name,
			Elapsed: fr.Elapsed,
			Checked: st.Checked, CrossSlot: st.CrossSlot, OutOfFrame: st.OutOfFrame,
		}
		return nil
	})
	p.VSAStats = stats
	if p.Lint == LintOff {
		return nil
	}
	p.ensureReport()
	for i := range funcs {
		p.Report.Merge(&reps[i])
	}
	p.Report.Sort()
	return p.lintGate("vsa")
}

// Oracle builds the optimizer's per-function alias-oracle factory from the
// pipeline's VSA setting: non-nil only when the stage is enabled, so
// callers can pass it to opt.PipelineOpts unconditionally.
func (p *Pipeline) Oracle() func(*ir.Func) opt.AliasOracle {
	if !p.VSA {
		return nil
	}
	return func(f *ir.Func) opt.AliasOracle { return vsa.NewOracle(f) }
}

// Refine runs the complete refinement-lifting sequence on a lifted module.
// On success, the recovered layout and verification report are recorded in
// the cache under the binary's program key, so an identical future run can
// skip the pipeline (see RecoverLayout). On a streamed pipeline the
// refine-ahead scheduler may already have run the sequence, in which case
// Refine is a no-op.
func (p *Pipeline) Refine() error {
	if p.refined {
		return nil
	}
	if err := p.refineStages(); err != nil {
		return err
	}
	p.refined = true
	p.recordProgram()
	return nil
}

// refineStages is the refinement sequence itself: regsave → varargs →
// stackref → symbolize → [vsa]. It deliberately does not write the
// program-key cache entry — a speculative refine-ahead run must never
// record a program-level result until its trace is validated
// (recordProgram is called only on the authoritative pipeline).
func (p *Pipeline) refineStages() error {
	if err := p.timed("regsave", p.RefineRegSave); err != nil {
		return err
	}
	if err := p.timed("varargs", p.RefineVarArgs); err != nil {
		return err
	}
	if err := p.timed("stackref", p.RefineStackRef); err != nil {
		return err
	}
	if err := p.timed("symbolize", func() error {
		_, err := p.RefineSymbolize()
		return err
	}); err != nil {
		return err
	}
	if p.VSA {
		if err := p.timed("vsa", p.RefineVSA); err != nil {
			return err
		}
	}
	if p.Types {
		if err := p.timed("typerec", p.RefineTypes); err != nil {
			return err
		}
	}
	return nil
}

// recordProgram memoizes the finished pipeline's layout and report under
// the binary's program key.
func (p *Pipeline) recordProgram() {
	if p.Cache != nil && p.Recovered != nil {
		p.Cache.PutProgram(p.programKey(), refcache.ProgramFromLayout(p.Recovered, p.Report))
	}
}
