package core_test

import (
	"bytes"
	"strings"
	"testing"

	"wytiwyg/internal/analysis"
	"wytiwyg/internal/codegen"
	"wytiwyg/internal/core"
	"wytiwyg/internal/ir"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/opt"
)

// A program with a function that only runs for large inputs: the pipeline
// can lift it with broad inputs, then refine under a narrower input set
// that never reaches it.
const degradeSrc = `
extern int printf(char *fmt, ...);
extern int input_int(int i);

int rare(int x) {
	int buf[4];
	buf[0] = x;
	buf[1] = x + 1;
	buf[2] = x + 2;
	buf[3] = x + 3;
	return buf[0] + buf[3];
}

int common(int x) {
	return x * 2 + 1;
}

int main() {
	int n = input_int(0);
	int r;
	if (n > 100) {
		r = rare(n);
	} else {
		r = common(n);
	}
	printf("r=%d\n", r);
	return 0;
}
`

// One unliftable function must degrade to a warning and a trap stub, not
// fail the binary: the rest refines normally, the recompiled binary matches
// the original on every refined path, and reaching the degraded function
// traps — the same guarantee the lifter gives untraced paths.
func TestRefineDegradesUnliftableFunction(t *testing.T) {
	img, err := gen.Build(degradeSrc, gen.GCC12O3, "degrade")
	if err != nil {
		t.Fatal(err)
	}
	smallInput := machine.Input{Ints: []int32{5}}
	largeInput := machine.Input{Ints: []int32{200}}

	var nativeOut bytes.Buffer
	native, err := machine.Execute(img, smallInput, &nativeOut)
	if err != nil {
		t.Fatal(err)
	}

	p, err := core.LiftBinaryOpts(img, []machine.Input{smallInput, largeInput},
		core.Options{Jobs: 2, Lint: core.LintWarn})
	if err != nil {
		t.Fatal(err)
	}
	rare := p.Mod.FuncByName("rare")
	if rare == nil {
		t.Fatal("rare not lifted")
	}
	// Narrow the refinement inputs so the sabotaged function never executes
	// during the refinement runs, then corrupt its body in a way the
	// canonicalization pass will choke on (single-argument adds).
	p.Inputs = []machine.Input{smallInput}
	corrupted := 0
	for _, b := range rare.Blocks {
		for _, v := range b.Insts {
			if v.Op == ir.OpAdd && len(v.Args) == 2 {
				v.Args = v.Args[:1]
				corrupted++
			}
		}
	}
	if corrupted == 0 {
		t.Fatal("no adds to corrupt in rare")
	}

	if err := p.Refine(); err != nil {
		t.Fatalf("refine did not isolate the broken function: %v", err)
	}
	if _, ok := p.Degraded["rare"]; !ok {
		t.Fatalf("rare not degraded; Degraded = %v", p.Degraded)
	}
	if len(p.Degraded) != 1 {
		t.Errorf("unexpected extra degradations: %v", p.Degraded)
	}
	warned := false
	for _, d := range p.Report.Diags {
		if d.Check == "pipeline" && d.Severity == analysis.Warn && d.Func == "rare" {
			warned = true
		}
	}
	if !warned {
		t.Errorf("no pipeline warning for rare in report:\n%s", p.Report)
	}
	// The stub is a single trap; the signature survives for callers.
	if len(rare.Blocks) != 1 || len(rare.Blocks[0].Insts) != 1 ||
		rare.Blocks[0].Insts[0].Op != ir.OpTrap {
		t.Errorf("rare not stubbed to a lone trap: %v", rare.Blocks)
	}
	// Everything else refined: the layout carries the other functions.
	if p.Recovered.Frame("main") == nil {
		t.Error("main missing from recovered layout")
	}

	opt.Pipeline(p.Mod)
	out, err := codegen.Compile(p.Mod, "degrade-rec")
	if err != nil {
		t.Fatal(err)
	}

	// The refined path matches the original binary.
	var recOut bytes.Buffer
	rec, err := machine.Execute(out, smallInput, &recOut)
	if err != nil {
		t.Fatal(err)
	}
	if recOut.String() != nativeOut.String() || rec.ExitCode != native.ExitCode {
		t.Errorf("refined path diverged: got (%q, %d), want (%q, %d)",
			recOut.String(), rec.ExitCode, nativeOut.String(), native.ExitCode)
	}

	// The degraded path traps (exit 254, the trap stub's signature).
	recLarge, err := machine.Execute(out, largeInput, &bytes.Buffer{})
	if err == nil && recLarge.ExitCode != 254 {
		t.Errorf("degraded path did not trap: exit=%d", recLarge.ExitCode)
	}
}

// A function-level stackref failure with no surviving path would still
// surface: refinement runs that reach a degraded function report the trap
// instead of silently producing wrong observations.
func TestDegradedFunctionReachedDuringRefinement(t *testing.T) {
	img, err := gen.Build(degradeSrc, gen.GCC12O3, "degrade2")
	if err != nil {
		t.Fatal(err)
	}
	largeInput := machine.Input{Ints: []int32{200}}
	p, err := core.LiftBinaryOpts(img, []machine.Input{largeInput},
		core.Options{Lint: core.LintWarn})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RefineRegSave(); err != nil {
		t.Fatal(err)
	}
	if err := p.RefineVarArgs(); err != nil {
		t.Fatal(err)
	}
	rare := p.Mod.FuncByName("rare")
	for _, b := range rare.Blocks {
		for _, v := range b.Insts {
			if v.Op == ir.OpAdd && len(v.Args) == 2 {
				v.Args = v.Args[:1]
			}
		}
	}
	if err := p.RefineStackRef(); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Degraded["rare"]; !ok {
		t.Fatalf("rare not recorded as degraded: %v", p.Degraded)
	}
	_, err = p.RefineSymbolize()
	if err == nil {
		t.Fatal("symbolization succeeded although its only input reaches the degraded function")
	}
	if !strings.Contains(err.Error(), "trap") {
		t.Errorf("unexpected error (want a trap report): %v", err)
	}
}
