package core_test

import (
	"bytes"
	"errors"
	"testing"

	"wytiwyg/internal/codegen"
	"wytiwyg/internal/core"
	"wytiwyg/internal/irexec"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/opt"
)

const pipelineSrc = `
extern int printf(char *fmt, ...);
extern int input_int(int i);

int gcd(int a, int b) {
	while (b != 0) {
		int t = a % b;
		a = b;
		b = t;
	}
	return a;
}

int main() {
	int x = input_int(0), y = input_int(1);
	printf("gcd=%d\n", gcd(x, y));
	return 0;
}
`

func TestPipelineEndToEnd(t *testing.T) {
	img, err := gen.Build(pipelineSrc, gen.GCC12O3, "gcd")
	if err != nil {
		t.Fatal(err)
	}
	inputs := []machine.Input{
		{Ints: []int32{54, 24}},
		{Ints: []int32{17, 5}},
	}
	p, err := core.LiftBinary(img, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if p.Trace == nil || p.CFG == nil || p.Rec == nil || p.Mod == nil {
		t.Fatal("pipeline state incomplete")
	}
	if err := p.Refine(); err != nil {
		t.Fatal(err)
	}
	if p.RegClasses == nil || p.SPOffsets == nil || p.VarResult == nil || p.Recovered == nil {
		t.Error("refinement state incomplete")
	}
	opt.Pipeline(p.Mod)
	out, err := codegen.Compile(p.Mod, "gcd-rec")
	if err != nil {
		t.Fatal(err)
	}
	for _, input := range inputs {
		var nat, rec bytes.Buffer
		n, err := machine.Execute(img, input, &nat)
		if err != nil {
			t.Fatal(err)
		}
		r, err := machine.Execute(out, input, &rec)
		if err != nil {
			t.Fatal(err)
		}
		if n.ExitCode != r.ExitCode || nat.String() != rec.String() {
			t.Errorf("input %v: %d/%q vs %d/%q", input.Ints,
				n.ExitCode, nat.String(), r.ExitCode, rec.String())
		}
	}
}

// The WYTIWYG guarantee: untraced paths trap in the recompiled binary too,
// and incremental re-lifting with a covering input fixes them (§7.2).
func TestIncrementalRelifting(t *testing.T) {
	src := `
extern int input_int(int i);
int main() {
	if (input_int(0) > 100) return 11;
	return 22;
}`
	img, err := gen.Build(src, gen.GCC12O3, "t")
	if err != nil {
		t.Fatal(err)
	}
	// First lift: only the low branch traced.
	p1, err := core.LiftBinary(img, []machine.Input{{Ints: []int32{1}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := p1.Refine(); err != nil {
		t.Fatal(err)
	}
	opt.Pipeline(p1.Mod)
	rec1, err := codegen.Compile(p1.Mod, "rec1")
	if err != nil {
		t.Fatal(err)
	}
	r, err := machine.Execute(rec1, machine.Input{Ints: []int32{500}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.ExitCode != 254 {
		t.Errorf("untraced path: exit %d, want the 254 trap marker", r.ExitCode)
	}
	// Re-lift with covering inputs: both branches work.
	p2, err := core.LiftBinary(img, []machine.Input{
		{Ints: []int32{1}}, {Ints: []int32{500}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Refine(); err != nil {
		t.Fatal(err)
	}
	opt.Pipeline(p2.Mod)
	rec2, err := codegen.Compile(p2.Mod, "rec2")
	if err != nil {
		t.Fatal(err)
	}
	for in, want := range map[int32]int32{1: 22, 500: 11} {
		r, err := machine.Execute(rec2, machine.Input{Ints: []int32{in}}, nil)
		if err != nil || r.ExitCode != want {
			t.Errorf("input %d: exit %d err %v, want %d", in, r.ExitCode, err, want)
		}
	}
}

// The interpreter's trap error surfaces through refinement runs when an
// input escapes coverage.
func TestRefinementInputMustBeCovered(t *testing.T) {
	src := `
extern int input_int(int i);
int main() {
	if (input_int(0) > 0) return 1;
	return 2;
}`
	img, err := gen.Build(src, gen.GCC12O3, "t")
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.LiftBinary(img, []machine.Input{{Ints: []int32{1}}})
	if err != nil {
		t.Fatal(err)
	}
	// Sneak in an uncovered input before refining.
	p.Inputs = append(p.Inputs, machine.Input{Ints: []int32{-1}})
	err = p.RefineRegSave()
	if err == nil {
		t.Fatal("refinement accepted an uncovered input")
	}
	if !errors.Is(err, irexec.ErrTrap) {
		t.Errorf("err = %v, want a trap", err)
	}
}
