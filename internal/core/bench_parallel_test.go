package core_test

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"wytiwyg/internal/bench"
	"wytiwyg/internal/bench/progs"
	"wytiwyg/internal/codegen"
	"wytiwyg/internal/core"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/opt"
	"wytiwyg/internal/refcache"
)

// refinedAt runs the full pipeline on one benchmark with the given worker
// count and returns the finished pipeline.
func refinedAt(t *testing.T, p progs.Program, jobs int) *core.Pipeline {
	t.Helper()
	return refinedAtOpts(t, p, core.Options{Jobs: jobs, Lint: core.LintWarn})
}

// refinedAtOpts is refinedAt with full control over the pipeline options
// (worker count, streaming mode, ...).
func refinedAtOpts(t *testing.T, p progs.Program, opts core.Options) *core.Pipeline {
	t.Helper()
	img, err := gen.Build(p.Src, gen.GCC12O3, p.Name)
	if err != nil {
		t.Fatalf("%s: build: %v", p.Name, err)
	}
	pl, err := core.LiftBinaryOpts(img, p.Inputs(), opts)
	if err != nil {
		t.Fatalf("%s: lift: %v", p.Name, err)
	}
	if err := pl.Refine(); err != nil {
		t.Fatalf("%s: refine: %v", p.Name, err)
	}
	return pl
}

// fingerprint renders everything a worker count could plausibly perturb:
// the refined IR, the recovered layout table and the verification report.
func fingerprint(p *core.Pipeline) string {
	var b strings.Builder
	fmt.Fprint(&b, p.Mod)
	for _, name := range p.Recovered.FuncNames() {
		fmt.Fprintf(&b, "%s\n", p.Recovered.Frame(name))
	}
	if p.Report != nil {
		p.Report.Sort()
		b.WriteString(p.Report.String())
	}
	// The typed layout (when the type-recovery stage ran) is part of the
	// contract: the `wytiwyg types` JSON must be byte-identical too.
	if p.TypeReport != nil {
		raw, err := p.TypeReport.JSON()
		if err != nil {
			fmt.Fprintf(&b, "typereport error: %v\n", err)
		} else {
			b.Write(raw)
		}
		for _, st := range p.TypeStats {
			fmt.Fprintf(&b, "%s slots=%d typed=%d conflicts=%d\n",
				st.Func, st.Slots, st.TypedSlots, st.Conflicts)
		}
	}
	return b.String()
}

// fingerprintFull extends fingerprint with the recompiled instruction
// stream: the refined IR is optimized and run through codegen, and every
// emitted instruction's disassembly is appended. The IR is printed first —
// the optimizer mutates the module in place.
func fingerprintFull(t *testing.T, p *core.Pipeline, name string) string {
	t.Helper()
	var b strings.Builder
	b.WriteString(fingerprint(p))
	opt.PipelineWith(p.Mod, opt.PipelineOpts{Typed: p.TypedInfo()})
	out, err := codegen.Compile(p.Mod, name+"-rec")
	if err != nil {
		t.Fatalf("%s: recompile: %v", name, err)
	}
	for _, in := range out.Code {
		fmt.Fprintf(&b, "%s\n", in.String())
	}
	return b.String()
}

// The tentpole determinism invariant: over the whole benchmark corpus, a
// single-worker run, a heavily parallel run, and the streaming pipeline at
// both worker counts all produce byte-identical IR, layouts, reports and
// recompiled instruction streams.
func TestParallelDeterminism(t *testing.T) {
	corpus := progs.All
	if testing.Short() {
		// The race-enabled CI pass runs in short mode: a few programs are
		// enough to exercise every fork/join path under the race detector.
		corpus = corpus[:3]
	}
	variants := []struct {
		label string
		opts  core.Options
	}{
		{"-j8", core.Options{Jobs: 8, Lint: core.LintWarn, Types: true}},
		{"-stream -j1", core.Options{Jobs: 1, Lint: core.LintWarn, Stream: true, Types: true}},
		{"-stream -j8", core.Options{Jobs: 8, Lint: core.LintWarn, Stream: true, Types: true}},
	}
	for _, p := range corpus {
		p := bench.Scaled(p, 6)
		base := fingerprintFull(t,
			refinedAtOpts(t, p, core.Options{Jobs: 1, Lint: core.LintWarn, Types: true}), p.Name)
		for _, v := range variants {
			got := fingerprintFull(t, refinedAtOpts(t, p, v.opts), p.Name)
			if got != base {
				t.Errorf("%s: %s output differs from -j1\n-- j1:\n%.2000s\n-- %s:\n%.2000s",
					p.Name, v.label, base, v.label, got)
			}
		}
	}
}

// A warm cache must serve a repeat run at a small fraction of the cold
// cost: the program-key hit skips tracing, lifting and every refinement.
func TestWarmCacheSpeedup(t *testing.T) {
	cache, err := refcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := bench.Scaled(progs.All[0], 6)
	img, err := gen.Build(p.Src, gen.GCC12O3, p.Name)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Lint: core.LintWarn, Cache: cache}

	start := time.Now()
	cold, err := core.RecoverLayout(img, p.Inputs(), opts)
	if err != nil {
		t.Fatal(err)
	}
	coldTime := time.Since(start)
	if cold.FromCache {
		t.Fatal("first run reported a cache hit")
	}

	start = time.Now()
	warm, err := core.RecoverLayout(img, p.Inputs(), opts)
	if err != nil {
		t.Fatal(err)
	}
	warmTime := time.Since(start)
	if !warm.FromCache {
		t.Fatal("second run missed the cache")
	}
	if 2*warmTime > coldTime {
		t.Errorf("warm run not at least 2x faster: cold %v, warm %v", coldTime, warmTime)
	}

	// The cached results must be indistinguishable from the recomputed ones.
	for _, name := range cold.Recovered.FuncNames() {
		if got, want := warm.Recovered.Frame(name).String(), cold.Recovered.Frame(name).String(); got != want {
			t.Errorf("frame %s differs: cached %q, computed %q", name, got, want)
		}
	}
	cold.Report.Sort()
	warm.Report.Sort()
	if warm.Report.String() != cold.Report.String() {
		t.Errorf("cached report differs:\n%s\nvs\n%s", warm.Report, cold.Report)
	}
}

// Parallel scaling needs real cores; on small machines only the
// determinism guarantee is testable.
func TestParallelSpeedup(t *testing.T) {
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs for a scaling assertion, have %d", runtime.NumCPU())
	}
	if testing.Short() {
		t.Skip("timing test")
	}
	programs := []string{"bzip2", "hmmer", "sjeng"}
	elapsed := func(jobs int) time.Duration {
		start := time.Now()
		for _, name := range programs {
			p, _ := progs.ByName(name)
			refinedAt(t, bench.Scaled(p, 12), jobs)
		}
		return time.Since(start)
	}
	elapsed(1) // warm up code paths before measuring
	seq := elapsed(1)
	par := elapsed(4)
	if float64(seq) < 1.5*float64(par) {
		t.Errorf("-j4 not >= 1.5x faster: -j1 %v, -j4 %v", seq, par)
	}
}

func benchmarkRefine(b *testing.B, jobs int) {
	p := bench.Scaled(progs.All[0], 6)
	img, err := gen.Build(p.Src, gen.GCC12O3, p.Name)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl, err := core.LiftBinaryOpts(img, p.Inputs(), core.Options{Jobs: jobs, Lint: core.LintWarn})
		if err != nil {
			b.Fatal(err)
		}
		if err := pl.Refine(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRefineJ1(b *testing.B) { benchmarkRefine(b, 1) }
func BenchmarkRefineJ4(b *testing.B) { benchmarkRefine(b, 4) }

func BenchmarkRecoverLayoutWarm(b *testing.B) {
	cache, err := refcache.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	p := bench.Scaled(progs.All[0], 6)
	img, err := gen.Build(p.Src, gen.GCC12O3, p.Name)
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{Lint: core.LintWarn, Cache: cache}
	if _, err := core.RecoverLayout(img, p.Inputs(), opts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl, err := core.RecoverLayout(img, p.Inputs(), opts)
		if err != nil {
			b.Fatal(err)
		}
		if !pl.FromCache {
			b.Fatal("warm run missed the cache")
		}
	}
}
