package core_test

import (
	"sync"
	"testing"

	"wytiwyg/internal/core"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/refcache"
)

// overlapSrc has two inputs with identical coverage (every block and branch
// outcome is reached by both), so the refine-ahead speculation launched on
// the fast input's prefix trace is digest-equal to the final merge and must
// be adopted. The iteration count is input-controlled: a small first input
// retires almost immediately while a large second input keeps the trace
// stage busy.
const overlapSrc = `
extern int printf(char *fmt, ...);
extern int input_int(int i);

int mix(int a, int b) {
	int t = a * 31 + b;
	return t % 9973;
}

int work(int n) {
	int acc = 1;
	int i;
	for (i = 0; i < n; i = i + 1) {
		acc = mix(acc, i);
	}
	return acc;
}

int main() {
	printf("v=%d\n", work(input_int(0)));
	return 0;
}
`

// eventLog is a goroutine-safe Observer recording stage events in arrival
// order.
type eventLog struct {
	mu     sync.Mutex
	events []core.StageEvent
}

func (l *eventLog) observe(e core.StageEvent) {
	l.mu.Lock()
	l.events = append(l.events, e)
	l.mu.Unlock()
}

// overlapped reports whether a refinement stage started before the trace
// stage finished.
func (l *eventLog) overlapped() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	refine := map[string]bool{"regsave": true, "varargs": true, "stackref": true, "symbolize": true}
	for _, e := range l.events {
		if e.Stage == "trace" && e.Action == "finish" {
			return false
		}
		if refine[e.Stage] && e.Action == "start" {
			return true
		}
	}
	return false
}

// The streaming scheduler must actually overlap stages: with one input
// retiring early and another tracing for a long time, a refinement stage
// starts before the trace stage finishes, the speculation is adopted, and
// the output still equals the phase-barriered run's byte for byte.
func TestStreamOverlap(t *testing.T) {
	img, err := gen.Build(overlapSrc, gen.GCC12O3, "overlap")
	if err != nil {
		t.Fatal(err)
	}
	inputs := func(slow int32) []machine.Input {
		return []machine.Input{{Ints: []int32{3}}, {Ints: []int32{slow}}}
	}

	barriered, err := core.LiftBinaryOpts(img, inputs(50000), core.Options{Jobs: 2, Lint: core.LintWarn})
	if err != nil {
		t.Fatal(err)
	}
	if err := barriered.Refine(); err != nil {
		t.Fatal(err)
	}
	want := fingerprint(barriered)

	// The wall-clock gap between "first input retired" and "trace drained"
	// is scheduling-dependent; escalate the slow input until the refine-ahead
	// pipeline demonstrably started inside it.
	sawOverlap := false
	for _, slow := range []int32{50000, 200000, 800000} {
		log := &eventLog{}
		p, err := core.LiftBinaryOpts(img, inputs(slow), core.Options{
			Jobs: 2, Lint: core.LintWarn, Stream: true, Observer: log.observe,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Refine(); err != nil {
			t.Fatal(err)
		}
		if p.StreamStats == nil {
			t.Fatal("streamed run left StreamStats nil")
		}
		if !p.StreamStats.Speculated {
			t.Errorf("slow=%d: no refine-ahead speculation launched", slow)
		}
		if !p.StreamStats.Adopted {
			t.Errorf("slow=%d: speculation not adopted despite identical coverage", slow)
		}
		if slow == 50000 {
			if got := fingerprint(p); got != want {
				t.Errorf("streamed output differs from barriered\n-- barriered:\n%.2000s\n-- streamed:\n%.2000s", want, got)
			}
		}
		if log.overlapped() {
			sawOverlap = true
			break
		}
	}
	if !sawOverlap {
		t.Error("no refinement stage started before the trace stage finished (no overlap observed)")
	}
}

// A streamed run over a single input has nothing to overlap (no prefix is
// ever strict); it must still complete, unspeculated, with the barriered
// output.
func TestStreamSingleInput(t *testing.T) {
	img, err := gen.Build(overlapSrc, gen.GCC12O3, "overlap-single")
	if err != nil {
		t.Fatal(err)
	}
	in := []machine.Input{{Ints: []int32{40}}}

	b, err := core.LiftBinaryOpts(img, in, core.Options{Lint: core.LintWarn})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Refine(); err != nil {
		t.Fatal(err)
	}

	s, err := core.LiftBinaryOpts(img, in, core.Options{Jobs: 4, Lint: core.LintWarn, Stream: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Refine(); err != nil {
		t.Fatal(err)
	}
	if s.StreamStats == nil || s.StreamStats.Speculated {
		t.Errorf("single-input run: stats = %+v, want unspeculated", s.StreamStats)
	}
	if got, want := fingerprint(s), fingerprint(b); got != want {
		t.Error("single-input streamed output differs from barriered")
	}
}

// The streaming flag is part of the program cache key: a barriered entry
// must never serve a streamed request (or vice versa), while a repeat run
// in the same mode hits.
func TestStreamDistinctCacheKey(t *testing.T) {
	cache, err := refcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	img, err := gen.Build(overlapSrc, gen.GCC12O3, "overlap-cache")
	if err != nil {
		t.Fatal(err)
	}
	in := []machine.Input{{Ints: []int32{3}}, {Ints: []int32{50}}}

	barriered := core.Options{Lint: core.LintWarn, Cache: cache}
	streamed := core.Options{Lint: core.LintWarn, Cache: cache, Stream: true, Jobs: 2}

	if p, err := core.RecoverLayout(img, in, barriered); err != nil {
		t.Fatal(err)
	} else if p.FromCache {
		t.Fatal("cold barriered run reported a cache hit")
	}
	p, err := core.RecoverLayout(img, in, streamed)
	if err != nil {
		t.Fatal(err)
	}
	if p.FromCache {
		t.Fatal("streamed run was served from the barriered entry")
	}
	p, err = core.RecoverLayout(img, in, streamed)
	if err != nil {
		t.Fatal(err)
	}
	if !p.FromCache {
		t.Fatal("repeat streamed run missed the cache")
	}
}
