package core

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"wytiwyg/internal/isa"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/obj"
	"wytiwyg/internal/refcache"
)

// PassVersion identifies the semantics of the refinement passes. It is part
// of every cache key: bumping it when a refinement, the lifter or a
// verification check changes behaviour invalidates all prior entries
// without touching the cache on disk.
const PassVersion = "refine-5"

// encodeInputs serializes an input set deterministically for hashing.
func encodeInputs(inputs []machine.Input) []byte {
	var out []byte
	u32 := func(v uint32) { out = binary.LittleEndian.AppendUint32(out, v) }
	u32(uint32(len(inputs)))
	for _, in := range inputs {
		u32(uint32(len(in.Ints)))
		for _, v := range in.Ints {
			u32(uint32(v))
		}
		u32(uint32(len(in.Strs)))
		for _, s := range in.Strs {
			u32(uint32(len(s)))
			out = append(out, s...)
		}
	}
	return out
}

// encodeImage serializes the parts of an image that refinement results
// depend on: the instruction stream, the data section, the entry point and
// the external-function bindings.
func encodeImage(img *obj.Image) []byte {
	out := isa.EncodeAll(img.Code)
	out = binary.LittleEndian.AppendUint32(out, img.Entry)
	out = append(out, img.Data...)
	exts := make([]uint32, 0, len(img.Externs))
	for a := range img.Externs {
		exts = append(exts, a)
	}
	sort.Slice(exts, func(i, j int) bool { return exts[i] < exts[j] })
	for _, a := range exts {
		out = binary.LittleEndian.AppendUint32(out, a)
		out = append(out, img.Externs[a]...)
		out = append(out, 0)
	}
	return out
}

// ProgramKey is the content address of a whole binary's refinement outcome:
// it covers the pass version, the verification mode (an entry records the
// report of the mode it ran under), whether the value-set analysis stage
// ran (its findings are part of the report), whether static cold-code
// recovery ran (it changes the recovered layout and the report), whether
// the streaming pipeline produced the entry (byte-identical by invariant,
// but keyed separately so a streaming-mode defect can never serve a
// barriered request or vice versa), whether the type-recovery stage ran
// (its typed-conflict findings are part of the report), the input set and
// the full image.
func ProgramKey(img *obj.Image, inputs []machine.Input, lint LintMode, vsa, static, streamed, types bool) refcache.Key {
	flag := func(b bool) byte {
		if b {
			return 1
		}
		return 0
	}
	return refcache.NewKey("program",
		[]byte(PassVersion),
		[]byte{byte(lint), flag(vsa), flag(static), flag(streamed), flag(types)},
		encodeInputs(inputs),
		encodeImage(img),
	)
}

// programKey is ProgramKey over the pipeline's own image and inputs.
func (p *Pipeline) programKey() refcache.Key {
	return ProgramKey(p.Img, p.Inputs, p.Lint, p.VSA, p.StaticRecover, p.Stream, p.Types)
}

// funcBytes serializes one recovered function's machine code: each traced
// block's start address followed by its encoded instructions. The traced
// block set is part of the content — the same bytes reached by different
// control flow are a different function to the refinement.
func (p *Pipeline) funcBytes(entry uint32) []byte {
	fr := p.Rec.ByEntry[entry]
	if fr == nil {
		return nil
	}
	var out []byte
	var buf [isa.InstrSize]byte
	for _, start := range fr.Blocks {
		b := p.CFG.Blocks[start]
		if b == nil {
			continue
		}
		out = binary.LittleEndian.AppendUint32(out, start)
		lo := (start - isa.CodeBase) / isa.InstrSize
		hi := (b.End - isa.CodeBase) / isa.InstrSize
		for i := lo; i <= hi && int(i) < len(p.Img.Code); i++ {
			isa.Encode(buf[:], &p.Img.Code[i])
			out = append(out, buf[:]...)
		}
	}
	return out
}

// funcKey is the content address of one function's refinement outcome. It
// covers the pass version, the input set, the function's own traced code
// and a digest of every direct callee observed during tracing (internal
// callees by their code, external ones by name) — the interprocedural
// facts a function's refinement consumes (saved-register classes, argument
// slots, variadic signatures) are derived from exactly those callees'
// behaviour. Deeper indirect dependencies are deliberately not hashed;
// this is the precision/reuse tradeoff of incremental lifting, and the
// entries only feed the per-function verification findings, never the IR.
func (p *Pipeline) funcKeyFor(name string, entry uint32) refcache.Key {
	own := p.funcBytes(entry)
	// Collect direct callees from the trace's observed call edges that
	// originate inside this function's blocks.
	calleeSet := make(map[uint32]bool)
	var extNames []string
	if fr := p.Rec.ByEntry[entry]; fr != nil {
		for _, start := range fr.Blocks {
			b := p.CFG.Blocks[start]
			if b == nil {
				continue
			}
			for addr := start; addr <= b.End; addr += isa.InstrSize {
				for target := range p.Trace.CallTargets[addr] {
					calleeSet[target] = true
				}
				if name, ok := p.Trace.ExtCalls[addr]; ok {
					extNames = append(extNames, name)
				}
			}
		}
	}
	callees := make([]uint32, 0, len(calleeSet))
	for a := range calleeSet {
		callees = append(callees, a)
	}
	sort.Slice(callees, func(i, j int) bool { return callees[i] < callees[j] })
	sort.Strings(extNames)
	h := sha256.New()
	for _, a := range callees {
		h.Write(p.funcBytes(a))
	}
	for _, n := range extNames {
		fmt.Fprintf(h, "%d:%s", len(n), n)
	}
	return refcache.NewKey("func",
		[]byte(PassVersion),
		encodeInputs(p.Inputs),
		[]byte(name),
		own,
		h.Sum(nil),
	)
}

// RecoverLayout is the cached front door of the pipeline: recover the
// binary's stack layout and verification report, serving both from the
// cache when the program key hits (skipping tracing, lifting and every
// refinement) and running — then recording — the full pipeline otherwise.
// On a cache hit the returned pipeline has FromCache set and carries only
// the layout and report; the IR-level fields are nil.
func RecoverLayout(img *obj.Image, inputs []machine.Input, opts Options) (*Pipeline, error) {
	if len(inputs) == 0 {
		inputs = []machine.Input{{}}
	}
	if opts.Cache != nil {
		key := ProgramKey(img, inputs, opts.Lint, opts.VSA, opts.StaticRecover, opts.Stream, opts.Types)
		if e, ok := opts.Cache.GetProgram(key); ok {
			p := newPipeline(img, inputs, opts)
			p.FromCache = true
			prog, rep := refcache.LayoutFromProgram(e)
			p.Recovered = prog
			if opts.Lint != LintOff {
				p.Report = rep
				if err := p.lintGate("cached"); err != nil {
					return p, err
				}
			}
			return p, nil
		}
	}
	p, err := LiftBinaryOpts(img, inputs, opts)
	if err != nil {
		return nil, err
	}
	if err := p.Refine(); err != nil {
		return nil, err
	}
	return p, nil
}
