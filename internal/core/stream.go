package core

import (
	"fmt"
	"time"

	"wytiwyg/internal/machine"
	"wytiwyg/internal/obj"
	"wytiwyg/internal/stream"
	"wytiwyg/internal/tracer"
)

// specResult is one refine-ahead speculation's outcome.
type specResult struct {
	p      *Pipeline
	err    error
	digest [32]byte
}

// liftStreamed is the streaming stage graph: trace producers, decode
// workers and the merge stage run concurrently (package stream), and as
// soon as a contiguous prefix of inputs has retired — while later inputs
// are still executing — one refine-ahead pipeline is launched on the
// prefix's merged trace with the full input list. When the stream drains,
// the speculation is adoptable iff its trace digest equals the final
// merged digest: digest equality means the fact sets are identical, and
// every stage below the trace is a pure function of those sets plus the
// (full) input list, so the speculative result is byte-for-byte the result
// a barriered run would have produced. Otherwise the speculation is
// discarded and the pipeline is built fresh from the final trace — output
// never depends on scheduling, only wall-clock does.
func liftStreamed(img *obj.Image, inputs []machine.Input, opts Options) (*Pipeline, error) {
	p := newPipeline(img, inputs, opts)
	p.observe("trace", "start")
	traceStart := time.Now()

	s := stream.Start(img, inputs, stream.Opts{Jobs: p.jobs(), Buf: opts.StreamBuf})

	// Watch input retirement; speculate once, on the longest contiguous
	// retired prefix at that moment, only while at least one later input
	// is still tracing (with a single input there is nothing to overlap).
	var specCh chan specResult
	retired := make([]bool, len(inputs))
	prefix := 0
	for i := range s.Done() {
		retired[i] = true
		for prefix < len(inputs) && retired[prefix] {
			prefix++
		}
		if specCh == nil && prefix >= 1 && prefix < len(inputs) {
			prefixTrace := s.PrefixTrace(prefix)
			specCh = make(chan specResult, 1)
			go func() {
				sp := newPipeline(img, inputs, opts)
				sp.Trace = prefixTrace
				err := sp.buildFromTrace()
				if err == nil {
					err = sp.refineStages()
				}
				specCh <- specResult{p: sp, err: err, digest: prefixTrace.Digest()}
			}()
		}
	}

	res, streamErr := s.Wait()
	p.Times = append(p.Times, StageTime{Stage: "trace", Elapsed: time.Since(traceStart)})
	p.observe("trace", "finish")
	if streamErr != nil {
		if specCh != nil {
			<-specCh // join the speculation; its result is moot
		}
		return nil, fmt.Errorf("core: tracing: %w", streamErr)
	}

	stats := &StreamStats{Records: res.Records, Blocks: res.Blocks, Closes: len(res.Closes)}
	finalDigest := res.Trace.Digest()

	if specCh != nil {
		stats.Speculated = true
		sr := <-specCh
		if sr.digest == finalDigest {
			// The prefix already had full coverage: the speculative run is
			// the authoritative result (including any deterministic
			// failure it hit — a fresh run over a digest-equal trace would
			// fail identically).
			if sr.err != nil {
				return nil, sr.err
			}
			sp := sr.p
			sp.Trace = res.Trace // the full merge (correct input count)
			sp.Times = append(p.Times, sp.Times...)
			sp.StreamStats = stats
			stats.Adopted = true
			sp.refined = true
			sp.recordProgram()
			return sp, nil
		}
	}

	// No speculation, or a stale one: build from the authoritative trace;
	// the caller's Refine runs the refinement sequence as usual.
	p.Trace = res.Trace
	p.StreamStats = stats
	if err := p.buildFromTrace(); err != nil {
		return nil, err
	}
	return p, nil
}

// StreamTraceDigest is a small utility for external digest comparisons
// (ci.sh's streaming smoke): trace the binary in the requested mode and
// return the merged trace's content digest.
func StreamTraceDigest(img *obj.Image, inputs []machine.Input, streamed bool, jobs int) ([32]byte, error) {
	if streamed {
		s := stream.Start(img, inputs, stream.Opts{Jobs: jobs})
		res, err := s.Wait()
		if err != nil {
			return [32]byte{}, err
		}
		return res.Trace.Digest(), nil
	}
	t := tracer.New(img)
	if err := t.RunAllJobs(inputs, nil, jobs); err != nil {
		return [32]byte{}, err
	}
	return t.Digest(), nil
}
