package typerec

import (
	"testing"

	"wytiwyg/internal/ir"
	"wytiwyg/internal/layout"
)

func mkFunc(m *ir.Module, name string) (*ir.Func, *ir.Block) {
	f := m.NewFunc(name, 0x1000+uint32(len(m.Funcs))*0x100)
	f.NumRet = 1
	b := f.NewBlock(0)
	if m.Entry == nil {
		m.Entry = f
	}
	return f, b
}

func konst(f *ir.Func, b *ir.Block, c int32) *ir.Value {
	k := f.NewValue(ir.OpConst)
	k.Const = c
	b.Append(k)
	return k
}

func alloca(f *ir.Func, b *ir.Block, name string, size uint32, off int32) *ir.Value {
	a := f.NewValue(ir.OpAlloca)
	a.AllocSize = size
	a.Name = name
	a.Const = off
	b.Append(a)
	return a
}

func store(f *ir.Func, b *ir.Block, addr, val *ir.Value, size uint8) {
	s := f.NewValue(ir.OpStore, addr, val)
	s.Size = size
	b.Append(s)
}

func load(f *ir.Func, b *ir.Block, addr *ir.Value, size uint8) *ir.Value {
	l := f.NewValue(ir.OpLoad, addr)
	l.Size = size
	b.Append(l)
	return l
}

func addK(f *ir.Func, b *ir.Block, base *ir.Value, k int32) *ir.Value {
	v := f.NewValue(ir.OpAdd, base, konst(f, b, k))
	b.Append(v)
	return v
}

func edge(from, to *ir.Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// TestResolveScalarAndStruct: a 4-byte slot accessed whole is int32; an
// 8-byte slot accessed at 0 and 4 is a two-field struct; a slot holding
// another slot's address is a pointer with its pointee reported.
func TestResolveScalarAndStruct(t *testing.T) {
	m := ir.NewModule("t")
	f, b := mkFunc(m, "f")
	x := alloca(f, b, "x", 4, -4)
	s := alloca(f, b, "s", 8, -12)
	p := alloca(f, b, "p", 4, -16)
	store(f, b, x, konst(f, b, 1), 4)
	store(f, b, s, konst(f, b, 2), 4)
	store(f, b, addK(f, b, s, 4), konst(f, b, 3), 4)
	store(f, b, p, x, 4) // p = &x
	b.Append(f.NewValue(ir.OpRet, konst(f, b, 0)))

	r := AnalyzeFunc(f)
	if got := r.Slots[x].String(); got != "int32" {
		t.Errorf("x: %s, want int32", got)
	}
	if got := r.Slots[s].String(); got != "struct{0:int32,4:int32}" {
		t.Errorf("s: %s, want struct{0:int32,4:int32}", got)
	}
	if got := r.Slots[p].String(); got != "ptr(int32)" {
		t.Errorf("p: %s, want ptr(int32)", got)
	}
	if len(r.Conflicts) != 0 {
		t.Errorf("unexpected conflicts: %v", r.Conflicts)
	}
}

// TestResolveArrayFromStride: a strided loop over a 40-byte slot types
// it as an int32 array; an interleaved two-field stream types an array
// of structs.
func TestResolveArrayFromStride(t *testing.T) {
	m := ir.NewModule("t")
	f, entry := mkFunc(m, "f")
	header := f.NewBlock(0)
	body := f.NewBlock(0)
	exit := f.NewBlock(0)
	edge(entry, header)
	edge(header, body)
	edge(header, exit)
	edge(body, header)

	arr := alloca(f, entry, "arr", 40, -40)
	pairs := alloca(f, entry, "pairs", 24, -64)
	i0 := konst(f, entry, 0)
	entry.Append(f.NewValue(ir.OpJmp))

	phi := f.NewValue(ir.OpPhi, i0, nil)
	header.AddPhi(phi)
	header.Append(f.NewValue(ir.OpBr, konst(f, header, 1)))

	a0 := f.NewValue(ir.OpAdd, arr, phi)
	body.Append(a0)
	store(f, body, a0, konst(f, body, 1), 4)
	inext := f.NewValue(ir.OpAdd, phi, konst(f, body, 4))
	body.Append(inext)
	phi.Args[1] = inext

	j := f.NewValue(ir.OpMul, phi, konst(f, body, 2))
	body.Append(j)
	p0 := f.NewValue(ir.OpAdd, pairs, j)
	body.Append(p0)
	store(f, body, p0, konst(f, body, 5), 4)
	p1 := addK(f, body, p0, 4)
	store(f, body, p1, konst(f, body, 6), 4)
	body.Append(f.NewValue(ir.OpJmp))

	exit.Append(f.NewValue(ir.OpRet, konst(f, exit, 0)))

	r := AnalyzeFunc(f)
	if got := r.Slots[arr].String(); got != "array(int32,10)" {
		t.Errorf("arr: %s, want array(int32,10)", got)
	}
	if got := r.Slots[pairs].String(); got != "array(struct{0:int32,4:int32},3)" {
		t.Errorf("pairs: %s, want array(struct{0:int32,4:int32},3)", got)
	}
}

// TestResolveConflict: the same offset accessed at two widths is
// irreconcilable — the slot degrades to conflict and the event is
// recorded for the lint finding.
func TestResolveConflict(t *testing.T) {
	m := ir.NewModule("t")
	f, b := mkFunc(m, "f")
	x := alloca(f, b, "x", 4, -4)
	store(f, b, x, konst(f, b, 1), 4)
	store(f, b, x, konst(f, b, 2), 1)
	b.Append(f.NewValue(ir.OpRet, konst(f, b, 0)))

	r := AnalyzeFunc(f)
	if got := r.Slots[x].Kind0(); got != layout.TConflict {
		t.Errorf("x kind: %v, want conflict", got)
	}
	if len(r.Conflicts) != 1 {
		t.Fatalf("conflicts: %d, want 1", len(r.Conflicts))
	}
}

// TestResolveUndercommit: a lone narrow access to a wide slot must not
// produce a claim.
func TestResolveUndercommit(t *testing.T) {
	m := ir.NewModule("t")
	f, b := mkFunc(m, "f")
	buf := alloca(f, b, "buf", 64, -64)
	store(f, b, buf, konst(f, b, 1), 1)
	b.Append(f.NewValue(ir.OpRet, konst(f, b, 0)))

	r := AnalyzeFunc(f)
	if got := r.Slots[buf].Kind0(); got != layout.TTop {
		t.Errorf("buf kind: %v, want top", got)
	}
}

// TestUnifyRefinesPointee: a slot with no local accesses adopts the
// scalar type witnessed by a callee that dereferences its address —
// the argument/return binding at work.
func TestUnifyRefinesPointee(t *testing.T) {
	m := ir.NewModule("t")
	g, gb := mkFunc(m, "g")
	gp := g.NewValue(ir.OpParam)
	gp.Idx = 0
	g.Params = append(g.Params, gp)
	gl := load(g, gb, gp, 4) // *p as int32
	gb.Append(g.NewValue(ir.OpRet, gl))

	f, fb := mkFunc(m, "f")
	x := alloca(f, fb, "x", 4, -4)
	call := f.NewValue(ir.OpCall, x) // g(&x)
	call.Callee = g
	call.NumRet = 1
	fb.Append(call)
	fb.Append(f.NewValue(ir.OpRet, konst(f, fb, 0)))

	rg := AnalyzeFunc(g)
	rf := AnalyzeFunc(f)
	if got := rf.Slots[x].Kind0(); got != layout.TTop {
		t.Fatalf("pre-unify x kind: %v, want top", got)
	}
	Unify(m, []*FuncResult{rg, rf})
	if got := rf.Slots[x].String(); got != "int32" {
		t.Errorf("post-unify x: %s, want int32", got)
	}
}
