// Package typerec infers types for recovered stack slots (and, where the
// facts allow, the heap objects a function traverses) on top of the
// symbolized IR and the value-set analysis. Each slot is assigned a point
// of the small lattice in internal/layout (int8/16/32, ptr(T),
// array(T, n), struct{off→T}, top, conflict) by
//
//  1. seeding from access widths and pointerness at every load/store the
//     VSA attributes to the slot,
//  2. lifting strided-interval facts (vsa.StrideOf) into array strides
//     and struct field offsets — a loop walking base+k·8+4 contributes
//     the field at offset 4 of an 8-byte element,
//  3. propagating across call boundaries through argument/return binding
//     with a union-find over type variables (see Unify), and
//  4. emitting a per-function typed layout for the optimizer (slot
//     partitions for type-based splitting), the `wytiwyg types` report,
//     and the precision/recall comparison against minicc's typed ground
//     truth.
//
// The pass is read-only on the IR and claims conservatively: a slot is
// committed to a type only when the observed fields cover the slot up to
// an alignment-padding allowance; contradictory direct evidence (the
// same offset accessed at two widths, overlapping fields) degrades the
// slot to conflict — surfaced as the typed-conflict lint finding — and
// cross-boundary evidence never overrides committed local evidence.
package typerec

import (
	"fmt"
	"sort"
	"time"

	"wytiwyg/internal/analysis"
	"wytiwyg/internal/ir"
	"wytiwyg/internal/layout"
	"wytiwyg/internal/vsa"
)

// Conflict records one irreconcilable-evidence event on a slot: the
// basis of the typed-conflict lint finding.
type Conflict struct {
	// Slot is the alloca whose evidence collided.
	Slot *ir.Value
	// At is the access instruction that collided with earlier evidence.
	At *ir.Value
	// Msg describes the collision (widths and offsets involved).
	Msg string
}

// FuncResult holds one function's inferred slot types plus the evidence
// the cross-function unification consumes.
type FuncResult struct {
	fn  *ir.Func
	fix *vsa.FuncResult

	// Slots maps each alloca to its inferred type (post-Unify; before
	// Unify it holds the purely local inference).
	Slots map[*ir.Value]*layout.Type
	// Heap is the inferred element type of the function's heap accesses
	// (top when the facts don't determine one).
	Heap *layout.Type
	// Conflicts lists the irreconcilable-evidence events in
	// deterministic (block, instruction) order.
	Conflicts []Conflict
	// Elapsed is the inference's wall-clock cost (including the VSA
	// fixpoint it runs on).
	Elapsed time.Duration

	// allocas lists the function's allocas in (block, instruction)
	// order — the deterministic iteration order for Slots.
	allocas []*ir.Value
	// local is the pre-unification inference per alloca.
	local map[*ir.Value]*layout.Type
	// pointee records, per alloca and field offset, the unique frame
	// slot whose address the field was observed to hold (nil once two
	// distinct targets were seen).
	pointee map[*ir.Value]map[int64]*ir.Value
	// paramElem is the per-parameter pointee evidence: the scalar type
	// the function's direct accesses through the parameter witness
	// (nil = no evidence; the parameter may not be a pointer at all).
	paramElem []*layout.Type
	// retPtr marks that the function was observed returning a pointer.
	retPtr bool

	// tainted marks slots an unattributable access may touch: they must
	// stay top — a commit from the attributable accesses alone could be
	// width-unsound against the accesses the VSA lost track of — and
	// cross-call unification must not adopt into them either.
	tainted map[*ir.Value]bool

	// Union-find variable ids, assigned by Unify (-1 until then).
	slotVar  map[*ir.Value]int
	paramVar []int
	retVar   int
}

// Fn returns the analyzed function.
func (r *FuncResult) Fn() *ir.Func { return r.fn }

// Allocas returns the function's stack objects in deterministic
// (block, instruction) order.
func (r *FuncResult) Allocas() []*ir.Value { return r.allocas }

// fact is one access-shape observation about an object: every observed
// offset is ≡ phase (mod step), accessed width bytes at a time.
type fact struct {
	step    int64 // congruence step (0 = exact offset)
	phase   int64 // offset residue (the exact offset when step == 0)
	lo, hi  int64 // observed extent when bounded
	bounded bool
	width   int64     // access width in bytes
	ptr     bool      // the accessed cell was observed holding a pointer
	target  *ir.Value // the unique pointed-to alloca, if known
	at      *ir.Value // the access instruction
}

// accWidth returns a memory op's access width (the IR encodes 4 as 0).
func accWidth(v *ir.Value) int64 {
	if v.Size == 0 {
		return 4
	}
	return int64(v.Size)
}

// AnalyzeFunc runs the type inference for one function: it computes the
// VSA fixpoint itself (the pass must not depend on the -vsa stage being
// enabled), gathers the access facts, and assembles the local slot
// types. Cross-function refinement happens later in Unify. The function
// is never mutated.
func AnalyzeFunc(f *ir.Func) *FuncResult {
	start := time.Now()
	fix := vsa.Analyze(f)
	r := &FuncResult{
		fn:      f,
		fix:     fix,
		local:   make(map[*ir.Value]*layout.Type),
		pointee: make(map[*ir.Value]map[int64]*ir.Value),
		retVar:  -1,
	}
	orc := fix.Oracle()

	slotFacts := make(map[*ir.Value][]fact)
	var heapFacts []fact
	var unattributed []*ir.Value // accesses no single object absorbed
	heapTainted := false
	for _, b := range f.Blocks {
		for _, v := range b.Insts {
			if v.Op == ir.OpAlloca {
				r.allocas = append(r.allocas, v)
				continue
			}
			if v.Op != ir.OpLoad && v.Op != ir.OpStore {
				continue
			}
			fc := fact{width: accWidth(v), at: v}
			fc.ptr, fc.target = r.cellPointer(v)
			if st, ok := orc.StrideOf(v.Args[0]); ok {
				fc.step, fc.phase = st.Step, st.Phase
				fc.lo, fc.hi, fc.bounded = st.Lo, st.Hi, st.Bounded
				slotFacts[st.Base] = append(slotFacts[st.Base], fc)
				continue
			}
			if s, ok := fix.ValueSetOf(v.Args[0]).HeapPart(); ok {
				if st, ok := vsa.StrideFacts(s); ok {
					fc.step, fc.phase = st.Step, st.Phase
					fc.lo, fc.hi, fc.bounded = st.Lo, st.Hi, st.Bounded
					heapFacts = append(heapFacts, fc)
					continue
				}
				heapTainted = true
			}
			unattributed = append(unattributed, v)
		}
	}

	// An access the fact loop could not attribute to exactly one object
	// may at runtime land in a slot at a width no fact recorded, so every
	// slot it may touch is demoted to top before resolution: committing
	// such a slot from the attributable accesses alone would be
	// width-unsound. "May touch" is built from three sound sources: the
	// address's syntactic alloca root (covers derivations the VSA widened
	// away), the frame parts its value set names (covers multi-slot
	// joins), and — for a fully unknown (top) address — the escaped
	// slots, since a pointer the VSA cannot track can only hold a frame
	// address that left the function's own arithmetic.
	r.tainted = make(map[*ir.Value]bool)
	if len(unattributed) > 0 {
		ef := analysis.Escape(f)
		for _, v := range unattributed {
			addr := v.Args[0]
			if root := ef.Roots[addr]; root != nil {
				r.tainted[root] = true
			}
			vs := fix.ValueSetOf(addr)
			if vs.IsTop() {
				for _, a := range r.allocas {
					if ef.Escaped[a] {
						r.tainted[a] = true
					}
				}
				heapTainted = true
				continue
			}
			if _, ok := vs.Part(vsa.HeapRegion); ok {
				heapTainted = true
			}
			for _, a := range r.allocas {
				if _, ok := vs.Part(vsa.Region{Kind: vsa.RegFrame, Base: a}); ok {
					r.tainted[a] = true
				}
			}
		}
	}

	for _, a := range r.allocas {
		if r.tainted[a] {
			r.local[a] = layout.Top
			continue
		}
		r.local[a] = r.resolveSlot(a, slotFacts[a])
	}
	r.Slots = make(map[*ir.Value]*layout.Type, len(r.local))
	for _, a := range r.allocas {
		r.Slots[a] = r.fillPointees(a, r.local[a])
	}
	r.Heap = layout.Top
	if !heapTainted {
		r.Heap = resolveHeap(heapFacts)
	}
	r.paramElem = paramEvidence(f)
	r.retPtr = returnsPointer(f, fix)
	r.Elapsed = time.Since(start)
	return r
}

// cellPointer reports whether the accessed cell was observed holding a
// pointer — for a store, the stored value has a frame/heap part; for a
// load, the loaded value does (the VSA tracks cell contents). It also
// returns the pointed-to alloca when the evidence names exactly one.
func (r *FuncResult) cellPointer(v *ir.Value) (bool, *ir.Value) {
	val := v
	if v.Op == ir.OpStore {
		val = v.Args[1]
	}
	vs := r.fix.ValueSetOf(val)
	if !vs.HasPointerPart() {
		return false, nil
	}
	if base, s, ok := vs.FramePart(); ok {
		if off, exact := s.Exact(); exact && off == 0 {
			return true, base
		}
	}
	return true, nil
}

// field is one scalar cell of an element under assembly.
type field struct {
	off   int64
	width int64
	ptr   bool
	// target is the unique pointed-to alloca of a ptr field (nil when
	// unknown or ambiguous); targetSet distinguishes "none seen yet".
	target    *ir.Value
	targetSet bool
}

// conflictf records an irreconcilable-evidence event and returns the
// conflict lattice point.
func (r *FuncResult) conflictf(a *ir.Value, at *ir.Value, format string, args ...any) *layout.Type {
	r.Conflicts = append(r.Conflicts, Conflict{
		Slot: a, At: at, Msg: fmt.Sprintf(format, args...),
	})
	return layout.Conflict
}

// resolveSlot assembles one slot's facts into a lattice point.
//
// The element size S is the gcd of the strided steps (the whole slot
// when no access strides), every fact folds to a field at its residue
// within [0, S), and the slot commits to a claim only when the fields
// tile the element up to strictly less than one max-field-width of
// padding — the alignment slack a C struct layout can introduce, and
// small enough that a lone narrow access can never masquerade as a
// covering claim. S dividing the slot size yields array(elem, n);
// contradictions (same offset at two widths, overlapping or
// element-straddling fields) degrade to conflict; insufficient coverage
// or out-of-slot evidence degrades to top.
func (r *FuncResult) resolveSlot(a *ir.Value, facts []fact) *layout.Type {
	if len(facts) == 0 {
		return layout.Top
	}
	size := int64(a.AllocSize)
	if size <= 0 {
		return layout.Top
	}

	elem := size
	for _, fc := range facts {
		if fc.step > 0 {
			elem = gcd(elem, fc.step)
		}
	}
	if elem <= 0 || size%elem != 0 {
		return layout.Top
	}

	fields := make(map[int64]*field)
	for i := range facts {
		fc := &facts[i]
		// Out-of-slot evidence: the claim machinery has nothing sound to
		// say about this slot (the VSA verifier reports the access
		// itself).
		if fc.step == 0 && (fc.phase < 0 || fc.phase+fc.width > size) {
			return layout.Top
		}
		if fc.bounded && (fc.lo < 0 || fc.hi+fc.width > size) {
			return layout.Top
		}
		off := fc.phase % elem
		if off+fc.width > elem {
			return r.conflictf(a, fc.at,
				"%d-byte access at offset %d straddles the %d-byte element boundary",
				fc.width, fc.phase, elem)
		}
		if old, ok := fields[off]; ok {
			if old.width != fc.width {
				return r.conflictf(a, fc.at,
					"slot accessed at irreconcilable widths (%d and %d bytes at offset %d)",
					old.width, fc.width, off)
			}
			old.ptr = old.ptr || fc.ptr
			old.note(fc.target)
			continue
		}
		fl := &field{off: off, width: fc.width, ptr: fc.ptr}
		fl.note(fc.target)
		fields[off] = fl
	}

	ordered := make([]*field, 0, len(fields))
	for _, fl := range fields {
		ordered = append(ordered, fl)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].off < ordered[j].off })

	var covered, maxW int64
	for i, fl := range ordered {
		if i > 0 && ordered[i-1].off+ordered[i-1].width > fl.off {
			return r.conflictf(a, facts[0].at,
				"overlapping fields at offsets %d and %d", ordered[i-1].off, fl.off)
		}
		covered += fl.width
		if fl.width > maxW {
			maxW = fl.width
		}
	}
	if elem-covered >= maxW {
		return layout.Top // not enough coverage to commit
	}

	et := r.elementType(a, ordered, elem)
	if et == nil {
		return layout.Top
	}
	if n := size / elem; n > 1 {
		return layout.ArrayOf(et, uint32(n))
	}
	return et
}

// elementType builds the element's lattice point from its tiled fields,
// recording pointee links for later resolution. A single field spanning
// the element is a scalar; several fields form a struct.
func (r *FuncResult) elementType(a *ir.Value, fields []*field, elem int64) *layout.Type {
	scalar := func(fl *field) *layout.Type {
		if fl.ptr && fl.width == 4 {
			if fl.target != nil {
				link := r.pointee[a]
				if link == nil {
					link = make(map[int64]*ir.Value)
					r.pointee[a] = link
				}
				link[fl.off] = fl.target
			}
			return layout.PtrTo(nil)
		}
		return layout.IntOfWidth(uint32(fl.width))
	}
	if len(fields) == 1 && fields[0].off == 0 && fields[0].width == elem {
		return scalar(fields[0])
	}
	out := make([]layout.TField, 0, len(fields))
	for _, fl := range fields {
		st := scalar(fl)
		if st == nil {
			return nil
		}
		out = append(out, layout.TField{Off: uint32(fl.off), Type: st})
	}
	return layout.StructOf(out)
}

// note merges one pointee observation into the field.
func (fl *field) note(target *ir.Value) {
	if !fl.targetSet {
		fl.target, fl.targetSet = target, true
		return
	}
	if fl.target != target {
		fl.target = nil
	}
}

// fillPointees decorates a slot type's pointer cells with the types of
// their uniquely observed targets (one level deep; pointees are
// reported, never scored).
func (r *FuncResult) fillPointees(a *ir.Value, t *layout.Type) *layout.Type {
	links := r.pointee[a]
	if len(links) == 0 || !t.Committed() {
		return t
	}
	elemOf := func(off int64) *layout.Type {
		tgt := links[off]
		if tgt == nil || tgt == a {
			return nil
		}
		if lt := r.local[tgt]; lt.Committed() {
			return lt
		}
		return nil
	}
	switch t.Kind {
	case layout.TPtr:
		if e := elemOf(0); e != nil {
			return layout.PtrTo(e)
		}
	case layout.TStruct:
		out := make([]layout.TField, len(t.Fields))
		copy(out, t.Fields)
		for i, fl := range out {
			if fl.Type.Kind0() == layout.TPtr && fl.Type.Elem == nil {
				if e := elemOf(int64(fl.Off)); e != nil {
					out[i] = layout.TField{Off: fl.Off, Type: layout.PtrTo(e)}
				}
			}
		}
		return layout.StructOf(out)
	case layout.TArray:
		if t.Elem.Kind0() == layout.TPtr && t.Elem.Elem == nil {
			if e := elemOf(0); e != nil {
				return layout.ArrayOf(layout.PtrTo(e), t.Count)
			}
		}
	}
	return t
}

// resolveHeap assembles the heap-access facts into an element type. The
// heap summary has no known object size, so only strided traversals
// commit (the stride is the element size); plain scalar heap accesses
// stay top.
func resolveHeap(facts []fact) *layout.Type {
	var elem int64
	for _, fc := range facts {
		if fc.step > 0 {
			elem = gcd(elem, fc.step)
		}
	}
	if elem <= 0 {
		return layout.Top
	}
	fields := make(map[int64]*field)
	for i := range facts {
		fc := &facts[i]
		off := fc.phase % elem
		if off+fc.width > elem {
			return layout.Top
		}
		if old, ok := fields[off]; ok {
			if old.width != fc.width {
				return layout.Conflict
			}
			old.ptr = old.ptr || fc.ptr
			continue
		}
		fields[off] = &field{off: off, width: fc.width, ptr: fc.ptr}
	}
	ordered := make([]*field, 0, len(fields))
	for _, fl := range fields {
		ordered = append(ordered, fl)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].off < ordered[j].off })
	var covered, maxW int64
	for i, fl := range ordered {
		if i > 0 && ordered[i-1].off+ordered[i-1].width > fl.off {
			return layout.Conflict
		}
		covered += fl.width
		if fl.width > maxW {
			maxW = fl.width
		}
	}
	if elem-covered >= maxW {
		return layout.Top
	}
	if len(ordered) == 1 && ordered[0].off == 0 && ordered[0].width == elem {
		if ordered[0].ptr && elem == 4 {
			return layout.PtrTo(nil)
		}
		return layout.IntOfWidth(uint32(elem))
	}
	out := make([]layout.TField, 0, len(ordered))
	for _, fl := range ordered {
		st := layout.IntOfWidth(uint32(fl.width))
		if fl.ptr && fl.width == 4 {
			st = layout.PtrTo(nil)
		}
		if st == nil {
			return layout.Top
		}
		out = append(out, layout.TField{Off: uint32(fl.off), Type: st})
	}
	return layout.StructOf(out)
}

// paramEvidence gathers the per-parameter pointee evidence from the
// function's own body: a parameter used (directly or via a constant
// offset) as a load/store address is a pointer, and the access width
// witnesses its pointee's scalar shape. The VSA cannot attribute these
// accesses (the caller's frame is outside the callee's abstraction), so
// the walk is syntactic.
func paramEvidence(f *ir.Func) []*layout.Type {
	out := make([]*layout.Type, len(f.Params))
	widthAt := make(map[*ir.Value]int64) // param → agreed direct-access width (-1 conflict)
	note := func(p *ir.Value, w int64) {
		if old, ok := widthAt[p]; ok && old != w {
			widthAt[p] = -1
			return
		}
		widthAt[p] = w
	}
	paramOf := func(v *ir.Value) *ir.Value {
		if v.Op == ir.OpParam {
			return v
		}
		if v.Op == ir.OpAdd && len(v.Args) == 2 {
			if v.Args[0].Op == ir.OpParam && v.Args[1].Op == ir.OpConst {
				return v.Args[0]
			}
			if v.Args[1].Op == ir.OpParam && v.Args[0].Op == ir.OpConst {
				return v.Args[1]
			}
		}
		return nil
	}
	for _, b := range f.Blocks {
		for _, v := range b.Insts {
			if v.Op != ir.OpLoad && v.Op != ir.OpStore {
				continue
			}
			if p := paramOf(v.Args[0]); p != nil {
				note(p, accWidth(v))
			}
		}
	}
	for i, p := range f.Params {
		if w, ok := widthAt[p]; ok && w > 0 {
			out[i] = layout.PtrTo(layout.IntOfWidth(uint32(w)))
		}
	}
	return out
}

// returnsPointer reports whether any return site's first slot carries a
// proven pointer value.
func returnsPointer(f *ir.Func, fix *vsa.FuncResult) bool {
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil || t.Op != ir.OpRet || len(t.Args) == 0 {
			continue
		}
		if fix.ValueSetOf(t.Args[0]).HasPointerPart() {
			return true
		}
	}
	return false
}

// SlotPartition returns the inferred scalar-cell partition of one slot
// as [offset, size] pairs, or nil when the slot has no committed type.
// This is the structural hook opt.TypedInfo consumes for type-based
// slot splitting; the partition is a claim, and the optimizer
// independently proves each access hits a cell exactly before acting on
// it.
func (r *FuncResult) SlotPartition(a *ir.Value) [][2]int64 {
	t := r.Slots[a]
	if !t.Committed() {
		return nil
	}
	leaves := t.Leaves()
	if len(leaves) == 0 {
		return nil
	}
	out := make([][2]int64, len(leaves))
	for i, l := range leaves {
		out[i] = [2]int64{int64(l.Off), int64(l.Size)}
	}
	return out
}

func gcd(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
