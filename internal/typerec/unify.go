package typerec

import (
	"wytiwyg/internal/ir"
	"wytiwyg/internal/layout"
)

// Unify propagates type evidence across call boundaries: every slot,
// parameter and return gets a type variable, call sites bind argument
// terms to parameter variables (an argument proven to be &slot links
// the parameter's pointee variable to the slot's), and a union-find
// merges the evidence. The pass only ever refines: a slot whose local
// inference committed keeps it untouched; only top slots adopt a
// unified type, and only when it exactly fits the slot's size. All
// iteration is in module/block/instruction order, so the outcome is
// deterministic and independent of the worker count that produced the
// per-function results.
func Unify(mod *ir.Module, results []*FuncResult) {
	u := newUnifier(results)
	u.bindCalls()
	u.adopt()
}

// unifier is the union-find over type variables with per-class bindings.
type unifier struct {
	results []*FuncResult
	byFn    map[*ir.Func]*FuncResult

	parent  []int
	rank    []int
	binding []*layout.Type // concrete evidence per class root
	elemOf  []int          // pointee variable of a pointer class (-1 none)
}

func newUnifier(results []*FuncResult) *unifier {
	u := &unifier{results: results, byFn: make(map[*ir.Func]*FuncResult, len(results))}
	for _, r := range results {
		u.byFn[r.fn] = r
		r.slotVar = make(map[*ir.Value]int, len(r.allocas))
		for _, a := range r.allocas {
			r.slotVar[a] = u.newVar(r.local[a])
		}
		r.paramVar = make([]int, len(r.paramElem))
		for i, pe := range r.paramElem {
			r.paramVar[i] = u.newVar(pe)
		}
		var ret *layout.Type
		if r.retPtr {
			ret = layout.PtrTo(nil)
		}
		r.retVar = u.newVar(ret)
	}
	return u
}

func (u *unifier) newVar(t *layout.Type) int {
	id := len(u.parent)
	u.parent = append(u.parent, id)
	u.rank = append(u.rank, 0)
	u.binding = append(u.binding, t)
	u.elemOf = append(u.elemOf, -1)
	return id
}

func (u *unifier) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// union merges two classes and their evidence. Pointee links merge
// recursively; the recursion terminates because every step strictly
// reduces the number of classes.
func (u *unifier) union(x, y int) {
	rx, ry := u.find(x), u.find(y)
	if rx == ry {
		return
	}
	merged := mergeTypes(u.binding[rx], u.binding[ry])
	ex, ey := u.elemOf[rx], u.elemOf[ry]
	root, other := rx, ry
	if u.rank[rx] < u.rank[ry] {
		root, other = ry, rx
	} else if u.rank[rx] == u.rank[ry] {
		u.rank[rx]++
	}
	u.parent[other] = root
	u.binding[root] = merged
	switch {
	case ex >= 0 && ey >= 0:
		u.elemOf[root] = ex
		u.union(ex, ey)
	case ex >= 0:
		u.elemOf[root] = ex
	case ey >= 0:
		u.elemOf[root] = ey
	}
}

// mergeTypes combines two pieces of evidence for one class. Top absorbs;
// conflict sticks; pointer evidence beats int32 at the same width (a
// cell that sometimes holds a pointer is a pointer cell); any other
// committed disagreement keeps the earlier binding — cross-boundary
// evidence refines, it never overrides or poisons.
func mergeTypes(a, b *layout.Type) *layout.Type {
	if !a.Committed() {
		if a.Kind0() == layout.TConflict {
			return a
		}
		return b
	}
	if !b.Committed() {
		if b.Kind0() == layout.TConflict {
			return b
		}
		return a
	}
	ak, bk := a.Kind0(), b.Kind0()
	switch {
	case ak == layout.TPtr && bk == layout.TInt32:
		return a
	case bk == layout.TPtr && ak == layout.TInt32:
		return b
	case ak == layout.TPtr && bk == layout.TPtr:
		if a.Elem == nil {
			return b
		}
		return a
	}
	return a
}

// bindCalls walks every call site in deterministic order and links
// argument evidence to callee parameter variables, and call-result uses
// to callee return variables.
func (u *unifier) bindCalls() {
	for _, r := range u.results {
		addrUsed := make(map[*ir.Value]bool)
		for _, b := range r.fn.Blocks {
			for _, v := range b.Insts {
				if v.Op == ir.OpLoad || v.Op == ir.OpStore {
					addrUsed[v.Args[0]] = true
				}
			}
		}
		for _, b := range r.fn.Blocks {
			for _, v := range b.Insts {
				switch v.Op {
				case ir.OpCall:
					if v.Callee != nil {
						u.bindCallee(r, u.byFn[v.Callee], v.Args)
					}
				case ir.OpCallInd:
					for _, t := range v.Targets {
						u.bindCallee(r, u.byFn[t], v.Args[1:])
					}
				case ir.OpExtract:
					// A call result used as an address marks the callee's
					// return a pointer.
					if !addrUsed[v] || v.Idx != 0 {
						continue
					}
					c := v.Args[0]
					if c.Op == ir.OpCall && c.Callee != nil {
						if cr := u.byFn[c.Callee]; cr != nil {
							rt := u.find(cr.retVar)
							u.binding[rt] = mergeTypes(u.binding[rt], layout.PtrTo(nil))
						}
					}
				}
			}
		}
	}
}

// bindCallee links one call site's arguments to the callee's parameter
// variables: an argument proven to be exactly &slot makes the parameter
// a pointer whose pointee variable is the slot's, and flows any
// concrete pointee evidence (the callee's own access widths through the
// parameter) into the slot's class.
func (u *unifier) bindCallee(caller, callee *FuncResult, args []*ir.Value) {
	if callee == nil {
		return
	}
	for i, arg := range args {
		if i >= len(callee.paramVar) {
			break
		}
		base, s, ok := caller.fix.ValueSetOf(arg).FramePart()
		if !ok {
			continue
		}
		off, exact := s.Exact()
		if !exact || off != 0 {
			continue
		}
		sv, ok := caller.slotVar[base]
		if !ok {
			continue
		}
		pr := u.find(callee.paramVar[i])
		u.binding[pr] = mergeTypes(u.binding[pr], layout.PtrTo(nil))
		if u.elemOf[pr] < 0 {
			u.elemOf[pr] = sv
		} else {
			u.union(u.elemOf[pr], sv)
		}
		pr = u.find(callee.paramVar[i])
		if pt := u.binding[pr]; pt.Kind0() == layout.TPtr && pt.Elem != nil {
			sr := u.find(sv)
			u.binding[sr] = mergeTypes(u.binding[sr], pt.Elem)
		}
	}
}

// adopt writes the unified types back: a slot whose local inference is
// top adopts its class's committed type when it exactly fits the slot's
// byte size. Committed and conflicted local results are never touched,
// and neither are tainted slots — an unattributable access in their own
// function may hit them at a width the callee evidence never saw.
func (u *unifier) adopt() {
	for _, r := range u.results {
		for _, a := range r.allocas {
			if r.local[a].Kind0() != layout.TTop || r.tainted[a] {
				continue
			}
			root := u.find(r.slotVar[a])
			t := u.binding[root]
			if t.Kind0() == layout.TPtr && t.Elem == nil && u.elemOf[root] >= 0 {
				if et := u.binding[u.find(u.elemOf[root])]; et.Committed() {
					t = layout.PtrTo(et)
				}
			}
			if t.Committed() && t.ByteSize() == a.AllocSize {
				r.Slots[a] = t
			}
		}
	}
}
