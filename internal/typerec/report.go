package typerec

import (
	"encoding/json"
	"fmt"
	"strings"

	"wytiwyg/internal/layout"
)

// LayoutSlots returns the function's local-area stack objects with
// their inferred types, sorted by offset — the same slot filter as the
// recovered layout (negative sp0 offsets, call plumbing excluded).
func (r *FuncResult) LayoutSlots() []layout.TypedVar {
	var out []layout.TypedVar
	for _, a := range r.allocas {
		if a.Const >= 0 || strings.HasPrefix(a.Name, "cp_") {
			continue
		}
		out = append(out, layout.TypedVar{
			Var:  layout.Var{Name: a.Name, Offset: a.Const, Size: a.AllocSize},
			Type: r.Slots[a],
		})
	}
	f := layout.TypedFrame{Func: r.fn.Name, Vars: out}
	f.Sort()
	return f.Vars
}

// TypedLayout assembles the per-function results into the recovered
// typed layout, the subject of the type precision/recall comparison.
func TypedLayout(results []*FuncResult) *layout.TypedProgram {
	prog := layout.NewTypedProgram()
	for _, r := range results {
		prog.Add(&layout.TypedFrame{Func: r.fn.Name, Vars: r.LayoutSlots()})
	}
	return prog
}

// SlotReport is one typed slot in the report.
type SlotReport struct {
	// Name is the recovered object name.
	Name string `json:"name"`
	// Offset is the sp0-relative start offset.
	Offset int32 `json:"offset"`
	// Size is the object size in bytes.
	Size uint32 `json:"size"`
	// Type is the rendered inferred type.
	Type string `json:"type"`
}

// FrameReport is one function's typed frame in the report.
type FrameReport struct {
	// Func is the function name.
	Func string `json:"func"`
	// Slots lists the typed local-area objects, sorted by offset.
	Slots []SlotReport `json:"slots"`
	// Heap is the rendered heap element type, when one was inferred.
	Heap string `json:"heap,omitempty"`
}

// Report is the machine-readable typed-frame report of one module — the
// payload of `wytiwyg types` and the typed part of the determinism
// fingerprint.
type Report struct {
	// Funcs lists the typed frames in module function order.
	Funcs []FrameReport `json:"funcs"`
	// TypedSlots counts slots with a committed type.
	TypedSlots int `json:"typed_slots"`
	// TotalSlots counts all layout slots considered.
	TotalSlots int `json:"total_slots"`
	// Conflicts counts the irreconcilable-evidence events.
	Conflicts int `json:"conflicts"`
}

// BuildReport renders the per-function results (in module function
// order) into the report.
func BuildReport(results []*FuncResult) *Report {
	rep := &Report{}
	for _, r := range results {
		fr := FrameReport{Func: r.fn.Name}
		for _, v := range r.LayoutSlots() {
			fr.Slots = append(fr.Slots, SlotReport{
				Name: v.Name, Offset: v.Offset, Size: v.Size,
				Type: v.Type.String(),
			})
			rep.TotalSlots++
			if v.Type.Committed() {
				rep.TypedSlots++
			}
		}
		if r.Heap.Committed() {
			fr.Heap = r.Heap.String()
		}
		rep.Funcs = append(rep.Funcs, fr)
		rep.Conflicts += len(r.Conflicts)
	}
	return rep
}

// JSON renders the report as indented JSON.
func (rep *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(rep, "", "  ")
}

// String renders the report as the decompiler-ish text listing of
// `wytiwyg types`.
func (rep *Report) String() string {
	var b strings.Builder
	for _, fr := range rep.Funcs {
		if len(fr.Slots) == 0 && fr.Heap == "" {
			continue
		}
		fmt.Fprintf(&b, "func %s:\n", fr.Func)
		for _, s := range fr.Slots {
			fmt.Fprintf(&b, "  %s@[%d,%d): %s\n", s.Name, s.Offset, s.Offset+int32(s.Size), s.Type)
		}
		if fr.Heap != "" {
			fmt.Fprintf(&b, "  heap: %s\n", fr.Heap)
		}
	}
	fmt.Fprintf(&b, "typed %d of %d slot(s), %d conflict(s)\n",
		rep.TypedSlots, rep.TotalSlots, rep.Conflicts)
	return b.String()
}
